//! Utility-vs-queries traces — the y/x axes of every figure in §VI.

/// One point: after `queries` task queries, the best solution found so far
/// had utility `utility`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Cumulative number of (cache-missing) utility queries issued.
    pub queries: usize,
    /// Best solution utility known at that point.
    pub utility: f64,
}

/// Utility of the best solution after at most `budget` queries (step
/// interpolation; the value before the first query is the first recorded
/// utility, conventionally the base utility of `Din`).
pub fn utility_at(trace: &[TracePoint], budget: usize) -> f64 {
    let mut best = 0.0f64;
    let mut seen_any = false;
    for p in trace {
        if p.queries <= budget {
            best = if seen_any {
                best.max(p.utility)
            } else {
                p.utility
            };
            seen_any = true;
        } else {
            break;
        }
    }
    if seen_any {
        best
    } else {
        trace.first().map_or(0.0, |p| p.utility)
    }
}

/// Resample a trace on a fixed query grid (for printing figure series).
pub fn resample(trace: &[TracePoint], grid: &[usize]) -> Vec<(usize, f64)> {
    grid.iter().map(|&q| (q, utility_at(trace, q))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<TracePoint> {
        vec![
            TracePoint {
                queries: 0,
                utility: 0.5,
            },
            TracePoint {
                queries: 10,
                utility: 0.6,
            },
            TracePoint {
                queries: 50,
                utility: 0.8,
            },
        ]
    }

    #[test]
    fn utility_at_steps() {
        let t = trace();
        assert_eq!(utility_at(&t, 0), 0.5);
        assert_eq!(utility_at(&t, 9), 0.5);
        assert_eq!(utility_at(&t, 10), 0.6);
        assert_eq!(utility_at(&t, 1000), 0.8);
    }

    #[test]
    fn utility_before_first_point_uses_first() {
        let t = vec![TracePoint {
            queries: 5,
            utility: 0.4,
        }];
        assert_eq!(utility_at(&t, 0), 0.4);
    }

    #[test]
    fn resample_on_grid() {
        let t = trace();
        let r = resample(&t, &[0, 25, 100]);
        assert_eq!(r, vec![(0, 0.5), (25, 0.6), (100, 0.8)]);
    }
}
