//! Overlap-ranking baseline (§II-C "Join Path overlap ranking", as in
//! S4 [14] and Ver [22]).

use crate::baselines::common::greedy_over_order_with_observer;
use crate::engine::SearchInputs;
use crate::observer::{NoopObserver, RunObserver};
use crate::runner::RunResult;

/// Query candidates in non-increasing order of join overlap with `Din`.
///
/// Uses the `overlap` profile coordinate when the profile set computed one,
/// otherwise the containment estimated at discovery time.
pub fn run_overlap(inputs: &SearchInputs<'_>, theta: Option<f64>, max_queries: usize) -> RunResult {
    run_overlap_with_observer(inputs, theta, max_queries, &mut NoopObserver)
}

/// [`run_overlap`] with streaming per-query callbacks.
pub fn run_overlap_with_observer(
    inputs: &SearchInputs<'_>,
    theta: Option<f64>,
    max_queries: usize,
    observer: &mut dyn RunObserver,
) -> RunResult {
    let overlap_idx = inputs.profile_names.iter().position(|n| n == "overlap");
    let score = |c: usize| -> f64 {
        match overlap_idx {
            Some(i) => inputs.profiles[c].get(i).copied().unwrap_or(0.0),
            None => inputs.candidates[c].discovered_containment,
        }
    };
    let mut order: Vec<usize> = (0..inputs.candidates.len()).collect();
    order.sort_by(|&a, &b| {
        score(b)
            .partial_cmp(&score(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    greedy_over_order_with_observer(inputs, &order, theta, max_queries, "Overlap", observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_fixtures::fixture;
    use crate::task::LinearSyntheticTask;

    #[test]
    fn overlap_order_queries_full_join_first() {
        let (din, candidates, mat) = fixture(4);
        // Give the useful augmentation a *low* overlap so Overlap finds it late.
        let task = LinearSyntheticTask {
            base: 0.2,
            weights: vec![0.0; candidates.len()],
        };
        let mut profiles = vec![vec![0.9]; candidates.len()];
        profiles[2] = vec![0.1];
        let names = vec!["overlap".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        // Budget of 1: only the top-overlap candidate gets queried, and it
        // must not be candidate 2.
        let r = run_overlap(&inputs, None, 2);
        assert_eq!(r.queries, 2, "base + one candidate");
        assert!(!r.selected.contains(&2));
    }
}
