//! iARDA: ARDA [37] adapted to the interventional setting (§VI-A).
//!
//! ARDA joins candidate features and ranks them by random-injection
//! feature importance. iARDA queries augmentations in decreasing order of
//! that ranking. Like the original system, scoring is *batched*: candidate
//! columns are appended to `Din` a couple hundred at a time, a forest with
//! injected noise features is fitted per batch, and candidates are ranked
//! by their importance across batches.

use metam_ml::dataset::{encode_table, TargetKind};
use metam_ml::importance::injection_scores;
use metam_ml::tree::TreeTask;
use metam_table::sample::sample_indices;

use crate::baselines::common::greedy_over_order_with_observer;
use crate::engine::SearchInputs;
use crate::observer::{NoopObserver, RunObserver};
use crate::runner::RunResult;

/// Batch size for importance scoring.
const BATCH: usize = 128;
/// Row sample used for scoring.
const SCORE_ROWS: usize = 300;

/// Compute the iARDA ranking (descending importance). Exposed for tests
/// and for Fig. 7's task-specific profile construction.
pub fn arda_ranking(inputs: &SearchInputs<'_>, classification: bool, seed: u64) -> Vec<usize> {
    let n = inputs.candidates.len();
    let Some(target) = inputs.target_column else {
        // Without a supervised target ARDA has nothing to rank on; fall
        // back to discovery-time containment.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            inputs.candidates[b]
                .discovered_containment
                .partial_cmp(&inputs.candidates[a].discovered_containment)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        return order;
    };

    let rows = sample_indices(inputs.din.nrows(), SCORE_ROWS, seed);
    let target_name = inputs.din.column_display_name(target);
    let kind = if classification {
        TargetKind::Classification
    } else {
        TargetKind::Regression
    };

    let mut scores = vec![0.0f64; n];
    let mut batch_start = 0;
    while batch_start < n {
        let batch_end = (batch_start + BATCH).min(n);
        // Din sample + this batch of materialized candidate columns.
        let mut table = inputs.din.take_rows(&rows);
        let mut members: Vec<usize> = Vec::new();
        for c in batch_start..batch_end {
            if let Ok(col) = inputs
                .materializer
                .materialize(inputs.din, &inputs.candidates[c])
            {
                if table.add_column(col.take(&rows)).is_ok() {
                    members.push(c);
                }
            }
        }
        if let Ok(data) = encode_table(&table, &target_name, kind) {
            if data.len() >= 10 {
                let task = if classification {
                    TreeTask::Classification {
                        n_classes: data.n_classes.unwrap_or(2).max(2),
                    }
                } else {
                    TreeTask::Regression
                };
                let inj = injection_scores(&data, task, 4, seed ^ batch_start as u64);
                // The batch's candidate columns are the trailing features.
                let offset = data.n_features() - members.len();
                for (k, &c) in members.iter().enumerate() {
                    scores[c] = inj[offset + k].importance;
                }
            }
        }
        batch_start = batch_end;
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// Run the iARDA baseline: greedy querying in ARDA-importance order.
pub fn run_iarda(
    inputs: &SearchInputs<'_>,
    theta: Option<f64>,
    max_queries: usize,
    classification: bool,
    seed: u64,
) -> RunResult {
    run_iarda_with_observer(
        inputs,
        theta,
        max_queries,
        classification,
        seed,
        &mut NoopObserver,
    )
}

/// [`run_iarda`] with streaming per-query callbacks (the importance-ranking
/// phase itself spends no task queries and emits nothing).
pub fn run_iarda_with_observer(
    inputs: &SearchInputs<'_>,
    theta: Option<f64>,
    max_queries: usize,
    classification: bool,
    seed: u64,
    observer: &mut dyn RunObserver,
) -> RunResult {
    let order = {
        let _span = metam_obs::span("baseline.arda_ranking", "iARDA");
        arda_ranking(inputs, classification, seed)
    };
    let mut result =
        greedy_over_order_with_observer(inputs, &order, theta, max_queries, "iARDA", observer);
    result.method = "iARDA".to_string();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_fixtures::fixture;
    use crate::task::LinearSyntheticTask;

    #[test]
    fn fallback_ranking_without_target_uses_containment() {
        let (din, candidates, mat) = fixture(4);
        let task = LinearSyntheticTask {
            base: 0.2,
            weights: vec![0.0; candidates.len()],
        };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let order = arda_ranking(&inputs, true, 0);
        assert_eq!(order.len(), candidates.len());
    }

    #[test]
    fn informative_column_ranks_early() {
        let (din, candidates, mat) = fixture(6);
        // Din's y column (index 1) is i; candidate columns are i*(t+1) — all
        // perfectly informative for predicting y. Rank with regression: all
        // should get nonzero importance and the ranking must be well-formed.
        let task = LinearSyntheticTask {
            base: 0.2,
            weights: vec![0.0; candidates.len()],
        };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: Some(1),
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let order = arda_ranking(&inputs, false, 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..candidates.len()).collect::<Vec<_>>());
    }

    #[test]
    fn iarda_runs_to_completion() {
        let (din, candidates, mat) = fixture(5);
        let mut weights = vec![0.0; candidates.len()];
        weights[0] = 0.4;
        let task = LinearSyntheticTask { base: 0.3, weights };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: Some(1),
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let r = run_iarda(&inputs, Some(0.65), 100, false, 0);
        assert!(r.utility >= 0.65, "u={}", r.utility);
        assert_eq!(r.method, "iARDA");
    }
}
