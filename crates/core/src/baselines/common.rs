//! The shared greedy-acceptance skeleton.

use std::collections::BTreeSet;

use metam_discovery::CandidateId;

use crate::engine::{QueryEngine, SearchInputs, StopSearch};
use crate::runner::RunResult;

/// Greedily query candidates in the given order: each candidate is tried as
/// an extension of the current solution and kept iff utility strictly
/// improves. Stops at θ, budget exhaustion, or end of order.
pub fn greedy_over_order(
    inputs: &SearchInputs<'_>,
    order: &[CandidateId],
    theta: Option<f64>,
    max_queries: usize,
    method: &str,
) -> RunResult {
    let mut engine = QueryEngine::new(inputs, max_queries);
    let mut selected: BTreeSet<CandidateId> = BTreeSet::new();
    let mut utility = 0.0;
    let mut base_utility = 0.0;

    let outcome = (|| -> Result<(), StopSearch> {
        base_utility = engine.base_utility()?;
        utility = base_utility;
        for &c in order {
            if theta.is_some_and(|t| utility >= t) {
                break;
            }
            let (raw, _, _) = engine.utility_extend(&selected, c, false)?;
            if raw > utility {
                selected.insert(c);
                utility = raw;
            }
        }
        Ok(())
    })();
    let _ = outcome; // budget exhaustion just truncates the scan

    RunResult {
        method: method.to_string(),
        selected: selected.into_iter().collect(),
        utility,
        base_utility,
        queries: engine.queries(),
        trace: engine.trace().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_fixtures::fixture;
    use crate::task::LinearSyntheticTask;

    #[test]
    fn greedy_accepts_only_improvements() {
        let (din, candidates, mat) = fixture(5);
        let mut weights = vec![0.0; candidates.len()];
        weights[2] = 0.3;
        weights[4] = 0.2;
        let task = LinearSyntheticTask { base: 0.1, weights };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
        };
        let order: Vec<usize> = (0..candidates.len()).collect();
        let r = greedy_over_order(&inputs, &order, None, 1000, "test");
        assert_eq!(r.selected, vec![2, 4]);
        assert!((r.utility - 0.6).abs() < 1e-9);
        assert!((r.base_utility - 0.1).abs() < 1e-9);
    }

    #[test]
    fn theta_short_circuits() {
        let (din, candidates, mat) = fixture(5);
        let task = LinearSyntheticTask {
            base: 0.1,
            weights: vec![0.5; candidates.len()],
        };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
        };
        let order: Vec<usize> = (0..candidates.len()).collect();
        let r = greedy_over_order(&inputs, &order, Some(0.55), 1000, "test");
        assert_eq!(r.selected.len(), 1, "first candidate already clears θ");
    }
}
