//! The shared greedy-acceptance skeleton.

use std::collections::BTreeSet;

use metam_discovery::CandidateId;

use crate::engine::{QueryEngine, QueryPlan, SearchInputs, StopSearch};
use crate::metam::StopReason;
use crate::observer::{NoopObserver, QueryKind, RunObserver};
use crate::runner::RunResult;

/// Greedily query candidates in the given order: each candidate is tried as
/// an extension of the current solution and kept iff utility strictly
/// improves. Stops at θ, budget exhaustion, or end of order.
pub fn greedy_over_order(
    inputs: &SearchInputs<'_>,
    order: &[CandidateId],
    theta: Option<f64>,
    max_queries: usize,
    method: &str,
) -> RunResult {
    greedy_over_order_with_observer(inputs, order, theta, max_queries, method, &mut NoopObserver)
}

/// [`greedy_over_order`] with a streaming observer: per-query events flow
/// from the shared engine, and the run's [`StopReason`] reaches
/// [`RunObserver::on_finish`]. Observation is passive — the result is
/// identical to an unobserved run.
pub fn greedy_over_order_with_observer(
    inputs: &SearchInputs<'_>,
    order: &[CandidateId],
    theta: Option<f64>,
    max_queries: usize,
    method: &str,
    observer: &mut dyn RunObserver,
) -> RunResult {
    let mut engine = QueryEngine::with_observer(inputs, max_queries, observer);
    engine.notify_search_start(inputs.candidates.len(), 0);
    let mut selected: BTreeSet<CandidateId> = BTreeSet::new();
    let mut utility = 0.0;
    let mut base_utility = 0.0;

    let outcome = (|| -> Result<(), StopSearch> {
        base_utility = engine.base_utility()?;
        utility = base_utility;
        // Scan a worker-pool window at a time: the window's extensions of
        // the *current* solution prefetch concurrently, then commit in
        // order. An acceptance changes the base, so the rest of the window
        // is discarded and re-planned — identical decisions to the
        // one-at-a-time loop, whatever the thread count.
        let mut pos = 0;
        'scan: while pos < order.len() {
            if theta.is_some_and(|t| utility >= t) {
                break;
            }
            let window_end = order.len().min(pos + engine.threads());
            let plans: Vec<QueryPlan> = order[pos..window_end]
                .iter()
                .map(|&c| QueryPlan::extend(QueryKind::Sequential, &selected, c))
                .collect();
            engine.prefetch(&plans);
            for plan in &plans {
                let raw = engine.evaluate(plan)?;
                pos += 1;
                if raw > utility {
                    selected = plan.set.clone();
                    utility = raw;
                    continue 'scan;
                }
            }
        }
        Ok(())
    })();
    // Budget exhaustion just truncates the scan; the reason is still
    // reported to the observer.
    let reason = stop_reason_of(outcome, theta, utility);
    engine.notify_finish(reason);

    RunResult {
        method: method.to_string(),
        selected: selected.into_iter().collect(),
        utility,
        base_utility,
        queries: engine.queries(),
        trace: engine.trace().to_vec(),
    }
}

/// Why a baseline scan ended: θ if it got there, budget if the engine cut
/// it off, otherwise it ran out of candidates.
pub(crate) fn stop_reason_of(
    outcome: Result<(), StopSearch>,
    theta: Option<f64>,
    utility: f64,
) -> StopReason {
    if theta.is_some_and(|t| utility >= t) {
        StopReason::ThetaReached
    } else if outcome.is_err() {
        StopReason::BudgetExhausted
    } else {
        StopReason::Exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_fixtures::fixture;
    use crate::task::LinearSyntheticTask;

    #[test]
    fn greedy_accepts_only_improvements() {
        let (din, candidates, mat) = fixture(5);
        let mut weights = vec![0.0; candidates.len()];
        weights[2] = 0.3;
        weights[4] = 0.2;
        let task = LinearSyntheticTask { base: 0.1, weights };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let order: Vec<usize> = (0..candidates.len()).collect();
        let r = greedy_over_order(&inputs, &order, None, 1000, "test");
        assert_eq!(r.selected, vec![2, 4]);
        assert!((r.utility - 0.6).abs() < 1e-9);
        assert!((r.base_utility - 0.1).abs() < 1e-9);
    }

    #[test]
    fn theta_short_circuits() {
        let (din, candidates, mat) = fixture(5);
        let task = LinearSyntheticTask {
            base: 0.1,
            weights: vec![0.5; candidates.len()],
        };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let order: Vec<usize> = (0..candidates.len()).collect();
        let r = greedy_over_order(&inputs, &order, Some(0.55), 1000, "test");
        assert_eq!(r.selected.len(), 1, "first candidate already clears θ");
    }
}
