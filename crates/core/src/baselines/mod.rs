//! Discover-then-augment baselines (paper §III-A and §VI).
//!
//! All baselines share the same greedy acceptance rule — query the current
//! solution extended by one candidate, keep it if utility improved — and
//! differ only in *which candidate they try next*:
//!
//! * [`uniform`] — uniformly random order,
//! * [`overlap`] — descending join-overlap order (S4/Ver style),
//! * [`mw`] — randomized multiplicative-weights over profile experts,
//! * [`arda`] — iARDA: ARDA's random-injection feature-importance ranking
//!   adapted to the interventional setting,
//! * [`join_all`] — Join-Everything, a single query with all candidates.

pub mod arda;
pub mod common;
pub mod join_all;
pub mod mw;
pub mod overlap;
pub mod uniform;

pub use arda::{run_iarda, run_iarda_with_observer};
pub use join_all::{run_join_all, run_join_all_with_observer};
pub use mw::{run_mw, run_mw_with_observer};
pub use overlap::{run_overlap, run_overlap_with_observer};
pub use uniform::{run_uniform, run_uniform_with_observer};
