//! Join-Everything baseline (§II-C): one query with every candidate joined.

use std::collections::BTreeSet;

use crate::engine::{QueryEngine, SearchInputs};
use crate::metam::StopReason;
use crate::observer::{NoopObserver, RunObserver};
use crate::runner::RunResult;

/// Augment `Din` with *all* candidates and query once. Cheap in queries,
/// expensive in width, and vulnerable to irrelevant/erroneous columns —
/// exactly the failure mode the paper describes.
pub fn run_join_all(inputs: &SearchInputs<'_>, max_queries: usize) -> RunResult {
    run_join_all_with_observer(inputs, max_queries, &mut NoopObserver)
}

/// [`run_join_all`] with streaming per-query callbacks.
pub fn run_join_all_with_observer(
    inputs: &SearchInputs<'_>,
    max_queries: usize,
    observer: &mut dyn RunObserver,
) -> RunResult {
    let mut engine = QueryEngine::with_observer(inputs, max_queries, observer);
    engine.notify_search_start(inputs.candidates.len(), 0);
    let base = engine.base_utility();
    let base_utility = base.unwrap_or(0.0);
    let all: BTreeSet<usize> = (0..inputs.candidates.len()).collect();
    let joined = engine.utility_of(&all);
    let utility = joined.unwrap_or(base_utility);
    engine.notify_finish(if base.is_err() || joined.is_err() {
        StopReason::BudgetExhausted
    } else {
        StopReason::Exhausted
    });
    RunResult {
        method: "JoinAll".to_string(),
        selected: all.into_iter().collect(),
        utility,
        base_utility,
        queries: engine.queries(),
        trace: engine.trace().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_fixtures::fixture;
    use crate::task::{LinearSyntheticTask, NonMonotoneTask};

    #[test]
    fn join_all_uses_two_queries() {
        let (din, candidates, mat) = fixture(5);
        let task = LinearSyntheticTask {
            base: 0.2,
            weights: vec![0.1; candidates.len()],
        };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let r = run_join_all(&inputs, 10);
        assert_eq!(r.queries, 2);
        assert_eq!(r.selected.len(), candidates.len());
    }

    #[test]
    fn join_all_suffers_from_harmful_columns() {
        let (din, candidates, mat) = fixture(5);
        let mut deltas = vec![-0.1; candidates.len()];
        deltas[0] = 0.3;
        let task = NonMonotoneTask { base: 0.5, deltas };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let r = run_join_all(&inputs, 10);
        assert!(r.utility < 0.5 + 0.3, "harmful columns drag the blob down");
    }
}
