//! Randomized multiplicative-weights baseline (§III-A "Prediction from
//! expert advice", [28]).
//!
//! Each data profile is an *expert* that ranks candidates by its own value.
//! Every round an expert is drawn with probability proportional to its
//! weight and proposes its best not-yet-queried candidate; the weight is
//! multiplied up on success (utility improved) and down on failure. This is
//! the randomized MW variant the paper evaluates; its §VI-A weakness —
//! one profile per decision, no profile *combinations* — is inherited
//! faithfully.

use std::collections::BTreeSet;

use rand::Rng;
use rand::SeedableRng;

use crate::baselines::common::stop_reason_of;
use crate::engine::{QueryEngine, SearchInputs, StopSearch};
use crate::observer::{NoopObserver, RunObserver};
use crate::runner::RunResult;

/// Multiplicative update factor.
const ETA: f64 = 0.3;

/// Run the MW baseline.
pub fn run_mw(
    inputs: &SearchInputs<'_>,
    theta: Option<f64>,
    max_queries: usize,
    seed: u64,
) -> RunResult {
    run_mw_with_observer(inputs, theta, max_queries, seed, &mut NoopObserver)
}

/// [`run_mw`] with streaming per-query callbacks.
pub fn run_mw_with_observer(
    inputs: &SearchInputs<'_>,
    theta: Option<f64>,
    max_queries: usize,
    seed: u64,
    observer: &mut dyn RunObserver,
) -> RunResult {
    let n = inputs.candidates.len();
    let l = inputs.profile_names.len().max(1);
    let mut engine = QueryEngine::with_observer(inputs, max_queries, observer);
    engine.notify_search_start(n, 0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    // Expert rankings: candidates in descending profile value (ties → id).
    let rankings: Vec<Vec<usize>> = (0..l)
        .map(|p| {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                let va = inputs.profiles[a].get(p).copied().unwrap_or(0.0);
                let vb = inputs.profiles[b].get(p).copied().unwrap_or(0.0);
                vb.partial_cmp(&va)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            order
        })
        .collect();
    let mut cursors = vec![0usize; l];
    let mut weights = vec![1.0f64; l];
    let mut queried: Vec<bool> = vec![false; n];

    let mut selected: BTreeSet<usize> = BTreeSet::new();
    let mut utility = 0.0;
    let mut base_utility = 0.0;

    let outcome = (|| -> Result<(), StopSearch> {
        base_utility = engine.base_utility()?;
        utility = base_utility;
        let mut remaining = n;
        while remaining > 0 {
            if theta.is_some_and(|t| utility >= t) {
                break;
            }
            // Draw an expert ∝ weight.
            let total: f64 = weights.iter().sum();
            let mut draw = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
            let mut expert = 0;
            for (i, &w) in weights.iter().enumerate() {
                if draw < w {
                    expert = i;
                    break;
                }
                draw -= w;
            }
            // The expert proposes its best unqueried candidate.
            let mut proposal = None;
            while cursors[expert] < n {
                let c = rankings[expert][cursors[expert]];
                if !queried[c] {
                    proposal = Some(c);
                    break;
                }
                cursors[expert] += 1;
            }
            let Some(c) = proposal else {
                // This expert exhausted its list; retire it.
                weights[expert] = 0.0;
                if weights.iter().all(|&w| w <= 0.0) {
                    break;
                }
                continue;
            };
            queried[c] = true;
            remaining -= 1;
            let (raw, _, _) = engine.utility_extend(&selected, c, false)?;
            let success = raw > utility;
            if success {
                selected.insert(c);
                utility = raw;
            }
            // Multiplicative update, kept in a sane range.
            weights[expert] =
                (weights[expert] * if success { 1.0 + ETA } else { 1.0 - ETA }).clamp(1e-6, 1e6);
        }
        Ok(())
    })();
    engine.notify_finish(stop_reason_of(outcome, theta, utility));

    RunResult {
        method: "MW".to_string(),
        selected: selected.into_iter().collect(),
        utility,
        base_utility,
        queries: engine.queries(),
        trace: engine.trace().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_fixtures::fixture;
    use crate::task::LinearSyntheticTask;

    #[test]
    fn mw_follows_the_informative_expert() {
        let (din, candidates, mat) = fixture(10);
        let n = candidates.len();
        // Candidate 7 is the useful one; profile 0 ranks it on top, profile 1
        // ranks it last.
        let mut weights = vec![0.0; n];
        weights[7] = 0.5;
        let task = LinearSyntheticTask { base: 0.2, weights };
        let profiles: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    if i == 7 { 1.0 } else { 0.1 },
                    if i == 7 { 0.0 } else { 0.9 },
                ]
            })
            .collect();
        let names = vec!["good".to_string(), "bad".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let r = run_mw(&inputs, Some(0.65), 100, 1);
        assert!(r.selected.contains(&7), "selected={:?}", r.selected);
        assert!(r.utility >= 0.65);
    }

    #[test]
    fn mw_terminates_when_all_queried() {
        let (din, candidates, mat) = fixture(4);
        let task = LinearSyntheticTask {
            base: 0.2,
            weights: vec![0.0; candidates.len()],
        };
        let profiles = vec![vec![0.5, 0.5]; candidates.len()];
        let names = vec!["a".to_string(), "b".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let r = run_mw(&inputs, Some(0.99), 1000, 2);
        assert_eq!(
            r.queries,
            candidates.len() + 1,
            "every candidate tried once + base"
        );
    }
}
