//! Uniform-sampling baseline (§II-C "Uniform sampling").

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::baselines::common::greedy_over_order_with_observer;
use crate::engine::SearchInputs;
use crate::observer::{NoopObserver, RunObserver};
use crate::runner::RunResult;

/// Query candidates in a seeded uniformly random order.
pub fn run_uniform(
    inputs: &SearchInputs<'_>,
    theta: Option<f64>,
    max_queries: usize,
    seed: u64,
) -> RunResult {
    run_uniform_with_observer(inputs, theta, max_queries, seed, &mut NoopObserver)
}

/// [`run_uniform`] with streaming per-query callbacks.
pub fn run_uniform_with_observer(
    inputs: &SearchInputs<'_>,
    theta: Option<f64>,
    max_queries: usize,
    seed: u64,
    observer: &mut dyn RunObserver,
) -> RunResult {
    let mut order: Vec<usize> = (0..inputs.candidates.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    greedy_over_order_with_observer(inputs, &order, theta, max_queries, "Uniform", observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_fixtures::fixture;
    use crate::task::LinearSyntheticTask;

    #[test]
    fn uniform_is_seed_deterministic() {
        let (din, candidates, mat) = fixture(8);
        let task = LinearSyntheticTask {
            base: 0.1,
            weights: vec![0.05; candidates.len()],
        };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let a = run_uniform(&inputs, None, 50, 3);
        let b = run_uniform(&inputs, None, 50, 3);
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.queries, b.queries);
    }
}
