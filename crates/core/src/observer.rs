//! Streaming observation of a running search.
//!
//! A [`RunObserver`] receives passive callbacks while any method runs:
//!
//! * [`on_search_start`](RunObserver::on_search_start) — once, before the
//!   first query;
//! * [`on_query`](RunObserver::on_query) — after **every counted task
//!   query**, from every method (Metam and all baselines route through the
//!   shared [`QueryEngine`](crate::engine::QueryEngine), which emits the
//!   event);
//! * [`on_round`](RunObserver::on_round) — after each outer round of
//!   Algorithm 1 (Metam only; baselines have no round structure);
//! * [`on_finish`](RunObserver::on_finish) — once, with the
//!   [`StopReason`].
//!
//! The CLI streams progress from these while a discover run is in flight;
//! benches record per-query trajectories without re-running searches.
//! Observation is passive — it never touches the RNG stream or the query
//! budget, so an observed run is bit-identical to an unobserved one.

use metam_discovery::CandidateId;

use crate::metam::StopReason;

/// Snapshot handed to [`RunObserver::on_round`] after each outer round.
#[derive(Debug, Clone)]
pub struct RoundEvent<'a> {
    /// 1-based outer round number.
    pub round: usize,
    /// Task queries spent so far (including certification overhead).
    pub queries: usize,
    /// Budget left (`usize::MAX` for an unbounded search).
    pub queries_remaining: usize,
    /// Best utility reached so far (max over the sequential and group
    /// solutions).
    pub best_utility: f64,
    /// Utility of the bare `Din`.
    pub base_utility: f64,
    /// The current best solution (ascending candidate ids).
    pub selected: &'a [CandidateId],
}

/// Which mechanism issued a query (the paper's blue-vs-red distinction,
/// plus the bookkeeping phases around the main loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Utility of the bare `Din` (or a baseline's starting point).
    Base,
    /// A sequential extension query: `u(Γ(D, T ∪ {P}))`.
    Sequential,
    /// A group query on a Thompson-sampled cluster subset.
    Group,
    /// A homogeneity-probe query (§IV-B "Generalization").
    Probe,
    /// A query issued by the IDENTIFY-MINIMAL post-check.
    Minimality,
}

impl QueryKind {
    /// Stable machine-readable label (trace events, metrics names).
    pub fn label(&self) -> &'static str {
        match self {
            QueryKind::Base => "base",
            QueryKind::Sequential => "sequential",
            QueryKind::Group => "group",
            QueryKind::Probe => "probe",
            QueryKind::Minimality => "minimality",
        }
    }
}

/// Snapshot handed to [`RunObserver::on_query`] after every counted task
/// query (memo hits are free and emit nothing).
#[derive(Debug, Clone)]
pub struct QueryEvent<'a> {
    /// 1-based index of this query (equals queries spent so far).
    pub query: usize,
    /// Which mechanism issued it.
    pub kind: QueryKind,
    /// The evaluated candidate set (ascending ids).
    pub set: &'a [CandidateId],
    /// The candidate this query was extending the solution by, when the
    /// query came from an extend-style step (`None` for group/base/full-set
    /// evaluations).
    pub candidate: Option<CandidateId>,
    /// Raw utility of this evaluation (before any certification wrapper).
    pub utility: f64,
    /// Best utility seen so far, including this query.
    pub best_utility: f64,
    /// `utility` minus the best seen *before* this query (0.0 baseline for
    /// the first query); negative when the evaluation regressed.
    pub delta: f64,
    /// Wall-clock seconds this task evaluation took (0.0 when the engine
    /// ran untimed, i.e. no observer and no trace sink).
    pub duration_secs: f64,
    /// Budget left after this query (`usize::MAX` for unbounded).
    pub queries_remaining: usize,
}

/// Streaming callbacks from a running search.
///
/// All methods have no-op defaults, so an observer implements only what it
/// cares about. Closures `FnMut(&RoundEvent)` implement the trait directly:
///
/// ```
/// use metam_core::observer::{RoundEvent, RunObserver};
/// let mut rounds = 0usize;
/// let mut observer = |_e: &RoundEvent<'_>| rounds += 1;
/// // `&mut observer` can now be passed to `Metam::run_with_observer`.
/// let _: &mut dyn RunObserver = &mut observer;
/// ```
pub trait RunObserver {
    /// The search is about to start: candidate count and cluster count
    /// (after any homogeneity fallback; 0 for baselines, which do not
    /// cluster).
    fn on_search_start(&mut self, n_candidates: usize, n_clusters: usize) {
        let _ = (n_candidates, n_clusters);
    }

    /// One counted task query was evaluated (any method, any phase).
    fn on_query(&mut self, event: &QueryEvent<'_>) {
        let _ = event;
    }

    /// One outer round of Algorithm 1 finished.
    fn on_round(&mut self, event: &RoundEvent<'_>) {
        let _ = event;
    }

    /// The search ended (after any minimality post-check).
    fn on_finish(&mut self, stop_reason: StopReason) {
        let _ = stop_reason;
    }
}

/// The do-nothing observer behind `Metam::run`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl RunObserver for NoopObserver {}

impl<F: FnMut(&RoundEvent<'_>)> RunObserver for F {
    fn on_round(&mut self, event: &RoundEvent<'_>) {
        self(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_observers_receive_rounds() {
        let mut seen = Vec::new();
        {
            let mut obs = |e: &RoundEvent<'_>| seen.push((e.round, e.queries));
            let observer: &mut dyn RunObserver = &mut obs;
            observer.on_search_start(10, 3);
            observer.on_round(&RoundEvent {
                round: 1,
                queries: 4,
                queries_remaining: 96,
                best_utility: 0.5,
                base_utility: 0.4,
                selected: &[2],
            });
            observer.on_finish(StopReason::ThetaReached);
        }
        assert_eq!(seen, vec![(1, 4)]);
    }

    #[test]
    fn query_kinds_have_stable_labels() {
        for (kind, label) in [
            (QueryKind::Base, "base"),
            (QueryKind::Sequential, "sequential"),
            (QueryKind::Group, "group"),
            (QueryKind::Probe, "probe"),
            (QueryKind::Minimality, "minimality"),
        ] {
            assert_eq!(kind.label(), label);
        }
    }
}
