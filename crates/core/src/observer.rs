//! Streaming observation of a running search.
//!
//! A [`RunObserver`] receives a callback after every outer round of
//! Algorithm 1: round number, queries spent so far, the best utility seen,
//! and the current best solution. The CLI uses it to stream progress while
//! a discover run is in flight; benches can record per-round trajectories
//! without re-running the search. Observation is passive — it never touches
//! the RNG stream or the query budget, so an observed run is bit-identical
//! to an unobserved one.

use metam_discovery::CandidateId;

/// Snapshot handed to [`RunObserver::on_round`] after each outer round.
#[derive(Debug, Clone)]
pub struct RoundEvent<'a> {
    /// 1-based outer round number.
    pub round: usize,
    /// Task queries spent so far (including certification overhead).
    pub queries: usize,
    /// Budget left (`usize::MAX` for an unbounded search).
    pub queries_remaining: usize,
    /// Best utility reached so far (max over the sequential and group
    /// solutions).
    pub best_utility: f64,
    /// Utility of the bare `Din`.
    pub base_utility: f64,
    /// The current best solution (ascending candidate ids).
    pub selected: &'a [CandidateId],
}

/// Per-round callbacks from a running Metam search.
///
/// All methods have no-op defaults, so an observer implements only what it
/// cares about. Closures `FnMut(&RoundEvent)` implement the trait directly:
///
/// ```
/// use metam_core::observer::{RoundEvent, RunObserver};
/// let mut rounds = 0usize;
/// let mut observer = |_e: &RoundEvent<'_>| rounds += 1;
/// // `&mut observer` can now be passed to `Metam::run_with_observer`.
/// let _: &mut dyn RunObserver = &mut observer;
/// ```
pub trait RunObserver {
    /// The search is about to start: candidate count and cluster count
    /// (after any homogeneity fallback).
    fn on_search_start(&mut self, n_candidates: usize, n_clusters: usize) {
        let _ = (n_candidates, n_clusters);
    }

    /// One outer round of Algorithm 1 finished.
    fn on_round(&mut self, event: &RoundEvent<'_>) {
        let _ = event;
    }
}

/// The do-nothing observer behind `Metam::run`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl RunObserver for NoopObserver {}

impl<F: FnMut(&RoundEvent<'_>)> RunObserver for F {
    fn on_round(&mut self, event: &RoundEvent<'_>) {
        self(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_observers_receive_rounds() {
        let mut seen = Vec::new();
        {
            let mut obs = |e: &RoundEvent<'_>| seen.push((e.round, e.queries));
            let observer: &mut dyn RunObserver = &mut obs;
            observer.on_search_start(10, 3);
            observer.on_round(&RoundEvent {
                round: 1,
                queries: 4,
                queries_remaining: 96,
                best_utility: 0.5,
                base_utility: 0.4,
                selected: &[2],
            });
        }
        assert_eq!(seen, vec![(1, 4)]);
    }
}
