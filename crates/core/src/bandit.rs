//! Thompson sampling over clusters (§IV-B IDENTIFY-GROUP).
//!
//! Each cluster is a Bernoulli arm; the reward is "querying an augmentation
//! from this cluster improved utility". Beta(1, 1) priors, posterior
//! updates on every observation, and draws via the seeded RNG so whole runs
//! stay reproducible.

use rand::Rng;

/// Beta-Bernoulli Thompson sampler.
#[derive(Debug, Clone)]
pub struct ThompsonSampler {
    /// (successes+1, failures+1) per arm.
    arms: Vec<(f64, f64)>,
}

impl ThompsonSampler {
    /// `n_arms` arms with uniform Beta(1,1) priors.
    pub fn new(n_arms: usize) -> ThompsonSampler {
        ThompsonSampler {
            arms: vec![(1.0, 1.0); n_arms],
        }
    }

    /// Number of arms.
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// `true` when there are no arms.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// Record a reward (success = the cluster's augmentation improved
    /// utility).
    pub fn update(&mut self, arm: usize, success: bool) {
        if let Some(a) = self.arms.get_mut(arm) {
            if success {
                a.0 += 1.0;
            } else {
                a.1 += 1.0;
            }
        }
    }

    /// Posterior mean of one arm.
    pub fn posterior_mean(&self, arm: usize) -> f64 {
        let (a, b) = self.arms[arm];
        a / (a + b)
    }

    /// One Beta(a, b) draw via the ratio-of-Gammas method (Marsaglia–Tsang
    /// for Gamma with shape ≥ 1, which always holds here since a, b ≥ 1).
    fn sample_beta<R: Rng>(&self, arm: usize, rng: &mut R) -> f64 {
        let (a, b) = self.arms[arm];
        let x = sample_gamma(a, rng);
        let y = sample_gamma(b, rng);
        if x + y <= 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }

    /// Draw a Thompson sample per arm and return the arms in descending
    /// sample order.
    pub fn ranked_arms<R: Rng>(&self, rng: &mut R) -> Vec<usize> {
        let mut scored: Vec<(usize, f64)> = (0..self.arms.len())
            .map(|i| (i, self.sample_beta(i, rng)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.into_iter().map(|(i, _)| i).collect()
    }

    /// Top-`t` distinct arms by Thompson draws — the cluster subset used to
    /// build one group query.
    pub fn sample_top<R: Rng>(&self, t: usize, rng: &mut R) -> Vec<usize> {
        let mut ranked = self.ranked_arms(rng);
        ranked.truncate(t);
        ranked
    }
}

/// Marsaglia–Tsang Gamma(shape, 1) sampler for shape ≥ 1.
fn sample_gamma<R: Rng>(shape: f64, rng: &mut R) -> f64 {
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn posterior_mean_tracks_rewards() {
        let mut s = ThompsonSampler::new(2);
        for _ in 0..20 {
            s.update(0, true);
            s.update(1, false);
        }
        assert!(s.posterior_mean(0) > 0.9);
        assert!(s.posterior_mean(1) < 0.1);
    }

    #[test]
    fn rewarded_arm_gets_sampled_more() {
        let mut s = ThompsonSampler::new(3);
        for _ in 0..30 {
            s.update(2, true);
            s.update(0, false);
            s.update(1, false);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut wins = [0usize; 3];
        for _ in 0..200 {
            wins[s.ranked_arms(&mut rng)[0]] += 1;
        }
        assert!(wins[2] > 150, "wins={wins:?}");
    }

    #[test]
    fn sample_top_returns_distinct_arms() {
        let s = ThompsonSampler::new(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let top = s.sample_top(3, &mut rng);
        assert_eq!(top.len(), 3);
        let mut sorted = top.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn sample_top_caps_at_arm_count() {
        let s = ThompsonSampler::new(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        assert_eq!(s.sample_top(10, &mut rng).len(), 2);
    }

    #[test]
    fn gamma_sampler_is_positive_with_sane_mean() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 2000;
        let mean: f64 = (0..n).map(|_| sample_gamma(4.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.3, "mean={mean}");
    }
}
