//! Algorithm 1: the Metam adaptive querying strategy.
//!
//! The search alternates two complementary mechanisms per inner iteration:
//!
//! * **sequential** (blue in the paper): pick the highest-quality-score
//!   candidate from a not-yet-touched cluster, query `u(Γ(D, {P}))`,
//!   update quality scores and the cluster bandit;
//! * **group** (red): Thompson-sample a size-`t` cluster subset, query it
//!   on `Din`, and keep the best group solution `T*_c`.
//!
//! After `τ` queries (once something improved), the best candidate of the
//! round joins `T*` and `D` grows. The search stops at `θ`, on budget
//! exhaustion, or when neither mechanism can improve; the winner of
//! `T*` vs `T*_c` then passes the minimality check.

use std::collections::BTreeSet;
use std::fmt;

use metam_discovery::CandidateId;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bandit::ThompsonSampler;
use crate::cluster::{cluster_partition, Clustering};
use crate::engine::{QueryEngine, QueryPlan, SearchInputs, StopSearch};
use crate::group::GroupState;
use crate::minimal::identify_minimal;
use crate::observer::{NoopObserver, QueryKind, RoundEvent, RunObserver};
use crate::quality::QualityModel;
use crate::trace::TracePoint;

/// Why the search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The target utility θ was reached.
    ThetaReached,
    /// The query budget ran out.
    BudgetExhausted,
    /// Neither mechanism could improve any further.
    Exhausted,
    /// The round safety limit was hit.
    MaxRounds,
}

impl StopReason {
    /// Stable machine-readable label (trace events, metrics names).
    pub fn label(&self) -> &'static str {
        match self {
            StopReason::ThetaReached => "theta_reached",
            StopReason::BudgetExhausted => "budget_exhausted",
            StopReason::Exhausted => "exhausted",
            StopReason::MaxRounds => "max_rounds",
        }
    }
}

impl fmt::Display for StopReason {
    /// The one human-readable rendering every surface (CLI, reports,
    /// benches) shares.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StopReason::ThetaReached => "theta reached (target utility met)",
            StopReason::BudgetExhausted => "budget exhausted (query limit hit)",
            StopReason::Exhausted => "exhausted (no candidate improves further)",
            StopReason::MaxRounds => "max rounds (safety bound hit)",
        })
    }
}

/// Configuration of Algorithm 1. Defaults mirror §VI "Settings":
/// ε = 0.05, τ = |C|, clustering + Thompson sampling + weight learning on.
#[derive(Debug, Clone, PartialEq)]
pub struct MetamConfig {
    /// Cluster radius ε.
    pub epsilon: f64,
    /// Queries per round before committing (`None` → |C|; `Some(1)` is the
    /// relaxed "any solution size" mode of §VI-A.2).
    pub tau: Option<usize>,
    /// Target utility θ (`None` → run to budget/exhaustion).
    pub theta: Option<f64>,
    /// Query budget.
    pub max_queries: usize,
    /// RNG seed (drives the first cluster center, Thompson draws, group
    /// member picks and homogeneity sampling).
    pub seed: u64,
    /// `false` = the `Nc` ablation variant (every candidate its own
    /// cluster).
    pub use_clustering: bool,
    /// `false` = the `Eq` ablation variant (clusters equally likely:
    /// the bandit posterior is never updated).
    pub use_thompson: bool,
    /// Learn profile weights by ridge (`false` = fixed uniform weights).
    pub learn_weights: bool,
    /// Run the log|C|-sample homogeneity test before searching (§IV-B
    /// "Generalization").
    pub check_homogeneity: bool,
    /// Wrap the task with monotonicity certification (P3).
    pub monotonic_certification: bool,
    /// Per-size cap of the group mechanism before `t` escalates.
    pub group_cap: usize,
    /// Run IDENTIFY-MINIMAL on the final solution.
    pub minimality: bool,
    /// Safety bound on outer rounds.
    pub max_rounds: usize,
}

impl Default for MetamConfig {
    fn default() -> Self {
        MetamConfig {
            epsilon: 0.05,
            tau: None,
            theta: None,
            max_queries: usize::MAX,
            seed: 0,
            use_clustering: true,
            use_thompson: true,
            learn_weights: true,
            check_homogeneity: false,
            monotonic_certification: true,
            group_cap: 25,
            minimality: true,
            max_rounds: 1000,
        }
    }
}

/// Outcome of one Metam run.
#[derive(Debug, Clone)]
pub struct MetamResult {
    /// The selected (minimal) augmentation set, ascending ids.
    pub selected: Vec<CandidateId>,
    /// Utility of `Din` augmented with `selected`.
    pub utility: f64,
    /// Utility of the bare `Din`.
    pub base_utility: f64,
    /// Total task queries issued (including certification and minimality).
    pub queries: usize,
    /// The query budget the search ran under (`usize::MAX` = unbounded) —
    /// kept on the result so callers can report spent/remaining budget
    /// without re-threading the configuration.
    pub budget: usize,
    /// Best-utility-so-far trace.
    pub trace: Vec<TracePoint>,
    /// Number of clusters used.
    pub n_clusters: usize,
    /// Augmentations the monotonicity wrapper ignored.
    pub certification_ignored: usize,
    /// Why the search stopped.
    pub stop_reason: StopReason,
}

impl MetamResult {
    /// Budget left unspent; `usize::MAX` for an unbounded search.
    pub fn queries_remaining(&self) -> usize {
        crate::engine::remaining_budget(self.budget, self.queries)
    }
}

/// The Metam search (Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct Metam {
    /// Knobs.
    pub config: MetamConfig,
}

impl Metam {
    /// New search with the given configuration.
    pub fn new(config: MetamConfig) -> Metam {
        Metam { config }
    }

    /// Run goal-oriented discovery over the inputs.
    pub fn run(&self, inputs: &SearchInputs<'_>) -> MetamResult {
        self.run_with_observer(inputs, &mut NoopObserver)
    }

    /// [`run`](Self::run) with per-round streaming callbacks. Observation
    /// is passive — the result is identical to an unobserved run.
    pub fn run_with_observer(
        &self,
        inputs: &SearchInputs<'_>,
        observer: &mut dyn RunObserver,
    ) -> MetamResult {
        let cfg = &self.config;
        let n = inputs.candidates.len();
        let mut engine = QueryEngine::with_observer(inputs, cfg.max_queries, observer);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut clustering = if cfg.use_clustering {
            let _span = metam_obs::span("search.cluster", "cluster_partition");
            cluster_partition(inputs.profiles, cfg.epsilon, cfg.seed)
        } else {
            Clustering::singletons(n)
        };
        let mut quality = QualityModel::new(n, inputs.profile_names.len(), cfg.learn_weights);
        let mut sampler = ThompsonSampler::new(clustering.len());

        // Homogeneity probe (optional): if any cluster mixes utilities,
        // fall back to singleton clusters and drop utility propagation.
        let mut stop_reason: Option<StopReason> = None;
        if cfg.check_homogeneity && cfg.use_clustering && n > 0 {
            match homogeneity_ok(&mut engine, &clustering, cfg.epsilon, &mut rng) {
                Ok(true) => {}
                Ok(false) => {
                    clustering = Clustering::singletons(n);
                    quality.disable_propagation();
                    sampler = ThompsonSampler::new(n);
                }
                Err(StopSearch) => stop_reason = Some(StopReason::BudgetExhausted),
            }
        }

        engine.notify_search_start(n, clustering.len());
        let mut search = Search {
            cfg,
            inputs,
            clustering: &clustering,
            quality,
            sampler,
            group_state: GroupState::new(cfg.group_cap),
            rng,
            t_star: BTreeSet::new(),
            t_star_c: BTreeSet::new(),
            u_d: 0.0,
            u_group_best: f64::NEG_INFINITY,
            base_utility: 0.0,
            tried: BTreeSet::new(),
        };

        let reason = match stop_reason {
            Some(r) => r,
            None => match search.run_loop(&mut engine) {
                Ok(r) => r,
                Err(StopSearch) => StopReason::BudgetExhausted,
            },
        };

        // Line 23: best of T* and T*_c.
        let (mut final_set, mut final_u) = if search.u_group_best > search.u_d {
            (search.t_star_c.clone(), search.u_group_best)
        } else {
            (search.t_star.clone(), search.u_d)
        };

        // Line 24: minimality check against θ (or the achieved utility when
        // no θ was given — keep what we reached, with fewer columns).
        if cfg.minimality && !final_set.is_empty() {
            let theta_eff = cfg.theta.unwrap_or(final_u).min(final_u);
            final_set = identify_minimal(&mut engine, &final_set, theta_eff);
            if let Ok(u) =
                engine.evaluate(&QueryPlan::new(QueryKind::Minimality, final_set.clone()))
            {
                final_u = u;
            }
        }

        engine.notify_finish(reason);

        MetamResult {
            selected: final_set.into_iter().collect(),
            utility: final_u,
            base_utility: search.base_utility,
            queries: engine.queries(),
            budget: cfg.max_queries,
            trace: engine.trace().to_vec(),
            n_clusters: clustering.len(),
            certification_ignored: engine.certification_ignored(),
            stop_reason: reason,
        }
    }
}

/// Mutable search state for one run.
struct Search<'a, 'b> {
    cfg: &'a MetamConfig,
    inputs: &'a SearchInputs<'b>,
    clustering: &'a Clustering,
    quality: QualityModel,
    sampler: ThompsonSampler,
    group_state: GroupState,
    rng: StdRng,
    /// Sequential solution (built greedily on D).
    t_star: BTreeSet<CandidateId>,
    /// Best group solution (evaluated on Din).
    t_star_c: BTreeSet<CandidateId>,
    /// u(Γ(Din, T*)).
    u_d: f64,
    /// u(Γ(Din, T*_c)).
    u_group_best: f64,
    base_utility: f64,
    /// Candidates already tried against the *current* T* (cleared when T*
    /// grows) — later rounds sweep deeper into each cluster instead of
    /// re-picking the same representative.
    tried: BTreeSet<CandidateId>,
}

impl Search<'_, '_> {
    fn theta_reached(&self) -> bool {
        self.cfg
            .theta
            .is_some_and(|t| self.u_d >= t || self.u_group_best >= t)
    }

    fn run_loop(&mut self, engine: &mut QueryEngine<'_>) -> Result<StopReason, StopSearch> {
        let n = self.inputs.candidates.len();
        if n == 0 {
            self.base_utility = engine.base_utility()?;
            self.u_d = self.base_utility;
            return Ok(StopReason::Exhausted);
        }
        self.base_utility = engine.base_utility()?;
        self.u_d = self.base_utility;
        let tau = self.cfg.tau.unwrap_or_else(|| self.clustering.len()).max(1);

        for _round in 0..self.cfg.max_rounds {
            if self.theta_reached() {
                return Ok(StopReason::ThetaReached);
            }
            let queries_before = engine.queries();
            let (progressed, attempted) = self.one_round(engine, tau)?;
            self.emit_round(_round + 1, engine);
            if self.theta_reached() {
                return Ok(StopReason::ThetaReached);
            }
            // Exhausted only when the round neither improved anything *nor*
            // learned anything new — i.e. every remaining candidate has
            // been queried against the current solution and none help
            // ("all augmentations are queried and none of them improve").
            // A round that evaluated candidates entirely from the memo (the
            // homogeneity probe pre-warms the cache) still counts as
            // learning: `tried` grew, so later rounds sweep further.
            if !progressed && !attempted && engine.queries() == queries_before {
                return Ok(StopReason::Exhausted);
            }
        }
        Ok(StopReason::MaxRounds)
    }

    /// Stream the round outcome to the observer (no effect on the search).
    fn emit_round(&mut self, round: usize, engine: &mut QueryEngine<'_>) {
        let (winner, best) = if self.u_group_best > self.u_d {
            (&self.t_star_c, self.u_group_best)
        } else {
            (&self.t_star, self.u_d)
        };
        let selected: Vec<CandidateId> = winner.iter().copied().collect();
        engine.notify_round(&RoundEvent {
            round,
            queries: engine.queries(),
            queries_remaining: engine.remaining(),
            best_utility: best,
            base_utility: self.base_utility,
            selected: &selected,
        });
    }

    /// Lines 7–22 of Algorithm 1. Returns `(improved, attempted)`: whether
    /// T* or T*_c improved, and whether any sequential candidate was tried
    /// at all (an empty round means the candidate pool is truly spent).
    fn one_round(
        &mut self,
        engine: &mut QueryEngine<'_>,
        tau: usize,
    ) -> Result<(bool, bool), StopSearch> {
        let n = self.inputs.candidates.len();
        let mut excluded_clusters: BTreeSet<usize> = BTreeSet::new();
        // (candidate, u' = utility of T* ∪ {candidate}) queried this round.
        let mut q_round: Vec<(CandidateId, f64)> = Vec::new();
        let group_best_before = self.u_group_best;
        let mut i = 0usize;

        loop {
            // Line 9: Pmax over candidates outside T*, untouched clusters,
            // and not yet tried against the current T*.
            let eligible = (0..n).filter(|c| {
                !self.t_star.contains(c)
                    && !self.tried.contains(c)
                    && !excluded_clusters.contains(&self.clustering.cluster_of(*c))
            });
            let Some(pmax) = self.quality.best_candidate(eligible, self.inputs.profiles) else {
                break;
            };

            // Plan → execute: speculatively prefetch this iteration's
            // queries over the worker pool before committing any of them.
            // The sequential extension (and its certification companion)
            // is certain; the group set depends on the sequential gain
            // only through the binary Thompson update, so both branches
            // are simulated on cloned sampler/RNG/group state — all RNG
            // stays on this thread, and a wrong branch merely wastes a
            // worker's wall-clock.
            if engine.threads() > 1 {
                let mut plans = vec![QueryPlan::extend(QueryKind::Sequential, &self.t_star, pmax)];
                if self.cfg.monotonic_certification {
                    plans.push(QueryPlan::new(QueryKind::Sequential, self.t_star.clone()));
                }
                let cluster = self.clustering.cluster_of(pmax);
                let branches: &[bool] = if self.cfg.use_thompson {
                    &[true, false]
                } else {
                    &[true]
                };
                for &gained in branches {
                    let mut sampler = self.sampler.clone();
                    if self.cfg.use_thompson {
                        sampler.update(cluster, gained);
                    }
                    let mut group_state = self.group_state.clone();
                    let mut rng = self.rng.clone();
                    if let Some(group) = group_state.propose(self.clustering, &sampler, &mut rng) {
                        plans.push(QueryPlan::new(
                            QueryKind::Group,
                            group.iter().copied().collect(),
                        ));
                    }
                }
                engine.prefetch(&plans);
            }

            // Line 10: sequential query (with P3 certification).
            let (effective, raw, _ignored) =
                engine.utility_extend(&self.t_star, pmax, self.cfg.monotonic_certification)?;
            let cluster = self.clustering.cluster_of(pmax);
            excluded_clusters.insert(cluster);
            self.tried.insert(pmax);
            let gain = raw - self.u_d;
            // Line 12: propagate the observation.
            self.quality
                .record(pmax, gain, self.inputs.profiles, self.clustering);
            if self.cfg.use_thompson {
                self.sampler.update(cluster, gain > 1e-9);
            }
            q_round.push((pmax, effective));

            // Line 8's guard, applied eagerly: once a sequential query
            // already meets θ there is nothing left for this round's group
            // query to improve — commit without spending further budget.
            if self.cfg.theta.is_some_and(|t| effective >= t) {
                break;
            }

            // Lines 13–15: group query on Din.
            if let Some(group) =
                self.group_state
                    .propose(self.clustering, &self.sampler, &mut self.rng)
            {
                let gset: BTreeSet<CandidateId> = group.iter().copied().collect();
                let ug = engine.evaluate(&QueryPlan::new(QueryKind::Group, gset.clone()))?;
                if ug > self.u_group_best {
                    self.u_group_best = ug;
                    self.t_star_c = gset;
                    if self.cfg.use_thompson {
                        for &m in &group {
                            self.sampler.update(self.clustering.cluster_of(m), true);
                        }
                    }
                }
            }

            i += 1;
            // Line 8 condition: stop once τ queries done AND something improved.
            let best_u_prime = q_round
                .iter()
                .map(|&(_, u)| u)
                .fold(f64::NEG_INFINITY, f64::max);
            if i >= tau && best_u_prime > self.u_d {
                break;
            }
            if self.theta_reached() {
                break;
            }
        }

        // Lines 17–20: commit the round's best candidate if it improves.
        let mut committed = false;
        let mut best: Option<(CandidateId, f64)> = None;
        for &(c, u) in &q_round {
            match best {
                Some((_, bu)) if u <= bu => {}
                _ => best = Some((c, u)),
            }
        }
        if let Some((pmax, u_prime)) = best {
            if u_prime > self.u_d {
                self.t_star.insert(pmax);
                self.u_d = u_prime;
                committed = true;
                // T* changed: marginal gains reset, everything is worth
                // re-trying against the new solution.
                self.tried.clear();
            }
        }
        Ok((
            committed || self.u_group_best > group_best_before,
            !q_round.is_empty(),
        ))
    }
}

/// The log|C|-sample homogeneity test (§IV-B "Generalization"): for every
/// multi-member cluster, query a few members alone on `Din`; the cluster is
/// homogeneous when a majority of samples lie within ε of the sample mean.
fn homogeneity_ok(
    engine: &mut QueryEngine<'_>,
    clustering: &Clustering,
    epsilon: f64,
    rng: &mut StdRng,
) -> Result<bool, StopSearch> {
    use rand::seq::SliceRandom;
    let n_clusters = clustering.len().max(2);
    let k = (n_clusters as f64).ln().ceil().max(2.0) as usize;
    for members in &clustering.clusters {
        if members.len() < 2 {
            continue;
        }
        let mut pool = members.clone();
        pool.shuffle(rng);
        pool.truncate(k.min(members.len()));
        // One batch per cluster — not one over all clusters — so an early
        // inhomogeneity return consumes exactly as much RNG (and budget)
        // as the sequential loop did.
        let plans: Vec<QueryPlan> = pool
            .iter()
            .map(|&m| QueryPlan::new(QueryKind::Probe, [m].into()))
            .collect();
        let mut utilities = Vec::with_capacity(plans.len());
        for result in engine.evaluate_batch(&plans) {
            utilities.push(result?);
        }
        let mean = utilities.iter().sum::<f64>() / utilities.len() as f64;
        let close = utilities
            .iter()
            .filter(|u| (**u - mean).abs() <= epsilon)
            .count();
        if close * 2 < utilities.len() {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_fixtures::fixture;
    use crate::task::{LinearSyntheticTask, NonMonotoneTask};

    fn run_with_task(
        n_ext: usize,
        task: &dyn crate::task::Task,
        config: MetamConfig,
    ) -> MetamResult {
        let (din, candidates, mat) = fixture(n_ext);
        // One synthetic profile proportional to candidate weight would be
        // cheating; use a mildly informative one instead.
        let profiles: Vec<Vec<f64>> = (0..candidates.len())
            .map(|i| vec![((i * 13) % 7) as f64 / 7.0, ((i * 5) % 3) as f64 / 3.0])
            .collect();
        let names = vec!["p0".to_string(), "p1".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task,
            threads: 1,
        };
        Metam::new(config).run(&inputs)
    }

    #[test]
    fn reaches_theta_on_linear_task() {
        let n_ext = 12;
        // Candidate 3 is the single useful augmentation.
        let mut weights = vec![0.0; n_ext];
        weights[3] = 0.5;
        let task = LinearSyntheticTask { base: 0.4, weights };
        let cfg = MetamConfig {
            theta: Some(0.85),
            max_queries: 500,
            ..Default::default()
        };
        let result = run_with_task(n_ext, &task, cfg);
        assert_eq!(result.stop_reason, StopReason::ThetaReached);
        assert!(result.utility >= 0.85, "u={}", result.utility);
        assert_eq!(
            result.selected,
            vec![3],
            "minimal solution is exactly the useful one"
        );
    }

    #[test]
    fn minimality_prunes_redundant_augmentations() {
        let n_ext = 10;
        let mut weights = vec![0.02; n_ext];
        weights[1] = 0.6;
        let task = LinearSyntheticTask { base: 0.3, weights };
        let cfg = MetamConfig {
            theta: Some(0.9),
            max_queries: 1000,
            ..Default::default()
        };
        let result = run_with_task(n_ext, &task, cfg);
        assert!(result.utility >= 0.9 - 1e-9);
        assert!(result.selected.contains(&1));
        assert!(result.selected.len() <= 2, "selected={:?}", result.selected);
    }

    #[test]
    fn exhausts_gracefully_when_theta_unreachable() {
        let n_ext = 6;
        let task = LinearSyntheticTask {
            base: 0.2,
            weights: vec![0.01; n_ext],
        };
        let cfg = MetamConfig {
            theta: Some(0.99),
            max_queries: 2000,
            ..Default::default()
        };
        let result = run_with_task(n_ext, &task, cfg);
        assert_ne!(result.stop_reason, StopReason::ThetaReached);
        assert!(result.utility < 0.99);
        assert!(result.queries <= 2000);
    }

    #[test]
    fn budget_is_respected() {
        let n_ext = 10;
        let task = LinearSyntheticTask {
            base: 0.2,
            weights: vec![0.01; n_ext],
        };
        let cfg = MetamConfig {
            theta: Some(0.99),
            max_queries: 15,
            ..Default::default()
        };
        let result = run_with_task(n_ext, &task, cfg);
        assert!(result.queries <= 15);
        assert_eq!(result.stop_reason, StopReason::BudgetExhausted);
        assert_eq!(result.budget, 15);
        assert_eq!(result.queries_remaining(), 15 - result.queries);
    }

    #[test]
    fn unbounded_budget_reports_unbounded_remaining() {
        let task = LinearSyntheticTask {
            base: 0.2,
            weights: vec![0.3; 4],
        };
        let cfg = MetamConfig {
            theta: Some(0.5),
            ..Default::default()
        };
        let result = run_with_task(4, &task, cfg);
        assert!(result.queries > 0);
        assert_eq!(result.budget, usize::MAX);
        assert_eq!(
            result.queries_remaining(),
            usize::MAX,
            "unbounded stays unbounded"
        );
    }

    #[test]
    fn non_monotone_task_survives_certification() {
        let n_ext = 8;
        let mut deltas = vec![-0.1; n_ext];
        deltas[2] = 0.4;
        let task = NonMonotoneTask { base: 0.4, deltas };
        let cfg = MetamConfig {
            theta: Some(0.75),
            max_queries: 500,
            ..Default::default()
        };
        let result = run_with_task(n_ext, &task, cfg);
        assert!(result.utility >= 0.75, "u={}", result.utility);
        assert_eq!(result.selected, vec![2]);
    }

    #[test]
    fn deterministic_given_seed() {
        let n_ext = 10;
        let mut weights = vec![0.0; n_ext];
        weights[4] = 0.3;
        weights[7] = 0.25;
        let mk = || LinearSyntheticTask {
            base: 0.3,
            weights: weights.clone(),
        };
        let cfg = MetamConfig {
            theta: Some(0.8),
            max_queries: 500,
            seed: 11,
            ..Default::default()
        };
        let t1 = mk();
        let t2 = mk();
        let a = run_with_task(n_ext, &t1, cfg.clone());
        let b = run_with_task(n_ext, &t2, cfg);
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.utility, b.utility);
    }

    #[test]
    fn variants_still_find_solutions() {
        let n_ext = 10;
        let mut weights = vec![0.0; n_ext];
        weights[5] = 0.5;
        for (use_clustering, use_thompson) in [(false, true), (true, false), (false, false)] {
            let task = LinearSyntheticTask {
                base: 0.4,
                weights: weights.clone(),
            };
            let cfg = MetamConfig {
                theta: Some(0.85),
                max_queries: 1000,
                use_clustering,
                use_thompson,
                ..Default::default()
            };
            let result = run_with_task(n_ext, &task, cfg);
            assert!(
                result.utility >= 0.85,
                "variant c={use_clustering} t={use_thompson} failed: {}",
                result.utility
            );
        }
    }

    #[test]
    fn empty_candidate_set_is_safe() {
        let task = LinearSyntheticTask {
            base: 0.4,
            weights: vec![],
        };
        let cfg = MetamConfig {
            theta: Some(0.9),
            max_queries: 10,
            ..Default::default()
        };
        let result = run_with_task(0, &task, cfg);
        assert_eq!(result.selected, Vec::<usize>::new());
        assert_eq!(result.stop_reason, StopReason::Exhausted);
        assert!((result.utility - 0.4).abs() < 1e-9);
    }

    #[test]
    fn trace_reaches_final_utility() {
        let n_ext = 8;
        let mut weights = vec![0.0; n_ext];
        weights[0] = 0.4;
        let task = LinearSyntheticTask { base: 0.3, weights };
        let cfg = MetamConfig {
            theta: Some(0.65),
            max_queries: 300,
            ..Default::default()
        };
        let result = run_with_task(n_ext, &task, cfg);
        let last = result.trace.last().unwrap();
        assert!(last.utility >= result.utility - 1e-9);
    }
}
