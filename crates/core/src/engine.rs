//! The query engine: utility evaluation with memoization, query
//! accounting, budget enforcement and monotonicity certification.
//!
//! A *query* (the unit of the paper's x-axes) is one evaluation of the task
//! on a distinct augmented dataset; repeated evaluations of the same
//! augmentation set hit the memo and are free.
//!
//! The engine is also the **one telemetry chokepoint** every method shares:
//! each counted query notifies the attached [`RunObserver`] (a
//! [`QueryEvent`]) and — when a `metam-obs` trace sink is installed —
//! emits a JSONL `query` event. Observation is passive (no RNG, no budget,
//! no result impact) and costs one atomic load per query when off.
//!
//! # Plan → execute → merge
//!
//! Evaluation is phrased as explicit [`QueryPlan`]s (kind + candidate +
//! set). A batch ([`QueryEngine::evaluate_batch`]) first *prefetches*:
//! uncached plans run their task fit + materialization concurrently over
//! the shared worker pool (`metam-pool`) into a side cache — workers touch
//! no RNG, no budget, no observer. A single-threaded *merge* then commits
//! results **in plan order**, so query accounting, memoization, the budget
//! cutoff, [`TracePoint`]s, [`QueryEvent`]s and the JSONL trace are
//! byte-identical to sequential execution ([`SearchInputs::threads`]` = 1`
//! skips the pool entirely).

use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

use metam_discovery::{Candidate, CandidateId, Materializer};
use metam_table::Table;

use crate::metam::StopReason;
use crate::observer::{QueryEvent, QueryKind, RoundEvent, RunObserver};
use crate::task::Task;
use crate::trace::TracePoint;

/// Everything a search method needs to run.
pub struct SearchInputs<'a> {
    /// The input dataset.
    pub din: &'a Table,
    /// Index of the task's target attribute in `din`, when the task is
    /// supervised. Metam itself never reads it (the task is a black box);
    /// the task-aware iARDA baseline does.
    pub target_column: Option<usize>,
    /// Candidate augmentations (ids must equal their position).
    pub candidates: &'a [Candidate],
    /// Profile vectors aligned with `candidates`.
    pub profiles: &'a [Vec<f64>],
    /// Profile names (coordinate order).
    pub profile_names: &'a [String],
    /// Materializer over the repository the candidates came from.
    pub materializer: &'a Materializer,
    /// The downstream task.
    pub task: &'a dyn Task,
    /// Worker threads for batched query execution. `1` (the conventional
    /// default) evaluates inline with no thread machinery; any value
    /// never changes results — only wall-clock.
    pub threads: usize,
}

/// One planned query: the mechanism issuing it, the candidate that
/// motivated it (for telemetry), and the augmentation set to evaluate.
///
/// Kind and candidate ride on the plan — not on engine-global mutable
/// state — so a batch that is partially memo-served still labels every
/// [`QueryEvent`] with the mechanism that actually planned it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// The mechanism issuing the query (pure telemetry).
    pub kind: QueryKind,
    /// The candidate whose evaluation this query is, when it is one
    /// (pure telemetry; `None` for whole-set queries).
    pub candidate: Option<CandidateId>,
    /// The augmentation set to evaluate.
    pub set: BTreeSet<CandidateId>,
}

impl QueryPlan {
    /// A whole-set query (no single motivating candidate).
    pub fn new(kind: QueryKind, set: BTreeSet<CandidateId>) -> QueryPlan {
        QueryPlan {
            kind,
            candidate: None,
            set,
        }
    }

    /// The singleton extension `base ∪ {add}`, tagged with `add`.
    pub fn extend(kind: QueryKind, base: &BTreeSet<CandidateId>, add: CandidateId) -> QueryPlan {
        let mut set = base.clone();
        set.insert(add);
        QueryPlan {
            kind,
            candidate: Some(add),
            set,
        }
    }
}

/// Raised when the query budget is exhausted; searches unwind and report
/// their best-so-far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopSearch;

/// Budget left after `spent` queries — the one unbounded-aware computation
/// every surface (engine, results, reports) shares. A `usize::MAX` budget
/// stays `usize::MAX` (unbounded), never a huge finite number.
pub fn remaining_budget(budget: usize, spent: usize) -> usize {
    if budget == usize::MAX {
        usize::MAX
    } else {
        budget.saturating_sub(spent)
    }
}

/// Memoizing, counting wrapper around the task (plus the monotonicity
/// certification component of Fig. 2).
pub struct QueryEngine<'a> {
    inputs: &'a SearchInputs<'a>,
    cache: HashMap<BTreeSet<CandidateId>, f64>,
    queries: usize,
    budget: usize,
    trace: Vec<TracePoint>,
    best_utility: f64,
    best_set: BTreeSet<CandidateId>,
    certification_ignored: usize,
    cache_hits: usize,
    observer: Option<&'a mut dyn RunObserver>,
    /// Speculatively executed, not-yet-committed results: set →
    /// `(utility, duration_secs)`. Entries are pure functions of the set
    /// (tasks are deterministic), so a stale entry can never be wrong —
    /// mis-speculation only wastes worker wall-clock.
    warm: HashMap<BTreeSet<CandidateId>, (f64, f64)>,
}

impl<'a> QueryEngine<'a> {
    /// New engine with a query budget (`usize::MAX` for unbounded).
    pub fn new(inputs: &'a SearchInputs<'a>, budget: usize) -> QueryEngine<'a> {
        QueryEngine {
            inputs,
            cache: HashMap::new(),
            queries: 0,
            budget,
            trace: Vec::new(),
            best_utility: 0.0,
            best_set: BTreeSet::new(),
            certification_ignored: 0,
            cache_hits: 0,
            observer: None,
            warm: HashMap::new(),
        }
    }

    /// [`new`](Self::new) with a streaming observer attached: every
    /// counted query (from any method) raises
    /// [`RunObserver::on_query`]; round/start/finish notifications route
    /// through [`notify_round`](Self::notify_round) and friends.
    pub fn with_observer(
        inputs: &'a SearchInputs<'a>,
        budget: usize,
        observer: &'a mut dyn RunObserver,
    ) -> QueryEngine<'a> {
        let mut engine = QueryEngine::new(inputs, budget);
        engine.observer = Some(observer);
        engine
    }

    /// Queries issued so far.
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// Memoized evaluations served for free so far.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Worker threads available for batched execution (≥ 1).
    pub fn threads(&self) -> usize {
        self.inputs.threads.max(1)
    }

    /// `true` when per-query telemetry is live (an observer is attached or
    /// a trace sink is installed) — the guard for timing overhead.
    fn observing(&self) -> bool {
        self.observer.is_some() || metam_obs::enabled()
    }

    /// Forward "search is starting" to the observer and the trace sink.
    pub fn notify_search_start(&mut self, n_candidates: usize, n_clusters: usize) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_search_start(n_candidates, n_clusters);
        }
        if metam_obs::enabled() {
            metam_obs::Event::event("search_start", "search")
                .int("candidates", n_candidates)
                .int("clusters", n_clusters)
                .int("budget", self.budget)
                .emit();
        }
    }

    /// Forward a finished round to the observer and the trace sink.
    pub fn notify_round(&mut self, event: &RoundEvent<'_>) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_round(event);
        }
        if metam_obs::enabled() {
            metam_obs::Event::event("round", "round")
                .int("round", event.round)
                .int("queries", event.queries)
                .int("queries_remaining", event.queries_remaining)
                .num("best_utility", event.best_utility)
                .num("base_utility", event.base_utility)
                .ints("selected", event.selected)
                .emit();
        }
    }

    /// Forward "search ended" to the observer and the trace sink, and
    /// flush this run's engine counters into the metrics registry.
    pub fn notify_finish(&mut self, stop_reason: StopReason) {
        metam_obs::counter_add("engine.queries", self.queries as u64);
        metam_obs::counter_add("engine.cache_hits", self.cache_hits as u64);
        metam_obs::counter_add(
            "engine.certification_ignored",
            self.certification_ignored as u64,
        );
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_finish(stop_reason);
        }
        if metam_obs::enabled() {
            metam_obs::Event::event("finish", stop_reason.label())
                .int("queries", self.queries)
                .int("queries_remaining", self.remaining())
                .num("best_utility", self.best_utility)
                .emit();
        }
    }

    /// Remaining budget (`usize::MAX` for an unbounded search).
    pub fn remaining(&self) -> usize {
        remaining_budget(self.budget, self.queries)
    }

    /// Number of augmentations the certification component ignored.
    pub fn certification_ignored(&self) -> usize {
        self.certification_ignored
    }

    /// The recorded best-utility trace.
    pub fn trace(&self) -> &[TracePoint] {
        &self.trace
    }

    /// Best set seen so far and its utility.
    pub fn best(&self) -> (&BTreeSet<CandidateId>, f64) {
        (&self.best_set, self.best_utility)
    }

    /// Materialize `Din` augmented with the given candidate set (sorted id
    /// order, so the table is unique per set).
    pub fn augmented_table(&self, set: &BTreeSet<CandidateId>) -> Table {
        Self::augmented_table_of(self.inputs, set)
    }

    /// [`augmented_table`](Self::augmented_table) as a free function of
    /// the inputs, callable from pool workers.
    fn augmented_table_of(inputs: &SearchInputs<'_>, set: &BTreeSet<CandidateId>) -> Table {
        let mut table = inputs.din.clone();
        for &id in set {
            let cand = &inputs.candidates[id];
            if let Ok(col) = inputs.materializer.materialize(inputs.din, cand) {
                // Column names are unique per candidate; errors (noisy
                // candidates) contribute nothing.
                let _ = table.add_column((*col).clone());
            }
        }
        table
    }

    /// The *execute* stage, pure per-set work safe to run on a worker:
    /// materialize the augmented table and fit the task. No RNG, no
    /// budget, no observer — returns `(utility, duration_secs)`.
    fn execute_raw(
        inputs: &SearchInputs<'_>,
        set: &BTreeSet<CandidateId>,
        timed: bool,
    ) -> (f64, f64) {
        let started = timed.then(Instant::now);
        let table = Self::augmented_table_of(inputs, set);
        let u = inputs.task.utility(&table).clamp(0.0, 1.0);
        (u, started.map_or(0.0, |t| t.elapsed().as_secs_f64()))
    }

    /// Speculatively execute any plans not already memoized, fanning the
    /// task fits out over the worker pool into the warm side cache. A
    /// no-op with one worker (the sequential path evaluates inline).
    ///
    /// Prefetching never commits anything: queries, budget, trace and
    /// events advance only in [`evaluate`](Self::evaluate), so a wrong
    /// speculation costs wall-clock, never correctness.
    pub fn prefetch(&mut self, plans: &[QueryPlan]) {
        let threads = self.threads();
        if threads <= 1 {
            return;
        }
        let mut sets: Vec<&BTreeSet<CandidateId>> = Vec::new();
        for plan in plans {
            if self.cache.contains_key(&plan.set)
                || self.warm.contains_key(&plan.set)
                || sets.iter().any(|s| **s == plan.set)
            {
                continue;
            }
            sets.push(&plan.set);
        }
        // Plans past the budget cutoff can never commit; don't execute them.
        let remaining = self.remaining();
        if sets.len() > remaining {
            sets.truncate(remaining);
        }
        if sets.is_empty() {
            return;
        }
        let inputs = self.inputs;
        let timed = self.observing();
        let results = metam_pool::map(&sets, threads, |set| Self::execute_raw(inputs, set, timed));
        for (set, result) in sets.into_iter().zip(results) {
            self.warm.insert(set.clone(), result);
        }
    }

    /// The *merge* stage: commit one plan's result — memo lookup, budget
    /// cutoff, query accounting, trace and telemetry — on the calling
    /// thread. Consumes a warm prefetched result when one exists,
    /// otherwise evaluates inline; either way the committed state is
    /// identical to a fully sequential run.
    pub fn evaluate(&mut self, plan: &QueryPlan) -> Result<f64, StopSearch> {
        if let Some(&u) = self.cache.get(&plan.set) {
            self.cache_hits += 1;
            return Ok(u);
        }
        if self.queries >= self.budget {
            return Err(StopSearch);
        }
        let observing = self.observing();
        let (u, duration_secs) = match self.warm.remove(&plan.set) {
            Some(executed) => executed,
            None => Self::execute_raw(self.inputs, &plan.set, observing),
        };
        self.queries += 1;
        self.cache.insert(plan.set.clone(), u);
        let first = self.trace.is_empty();
        let prev_best = self.best_utility;
        if first || u > self.best_utility {
            self.best_utility = if first { u } else { self.best_utility.max(u) };
            self.best_set = plan.set.clone();
        }
        self.trace.push(TracePoint {
            queries: self.queries,
            utility: self.best_utility,
        });
        if observing {
            let set_vec: Vec<CandidateId> = plan.set.iter().copied().collect();
            let event = QueryEvent {
                query: self.queries,
                kind: plan.kind,
                set: &set_vec,
                candidate: plan.candidate,
                utility: u,
                best_utility: self.best_utility,
                delta: if first { 0.0 } else { u - prev_best },
                duration_secs,
                queries_remaining: remaining_budget(self.budget, self.queries),
            };
            metam_obs::record("engine.query_secs", duration_secs);
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_query(&event);
            }
            if metam_obs::enabled() {
                let mut line = metam_obs::Event::event("query", event.kind.label())
                    .int("query", event.query)
                    .ints("set", &set_vec)
                    .num("utility", event.utility)
                    .num("best_utility", event.best_utility)
                    .num("delta", event.delta)
                    .num("secs", event.duration_secs)
                    .int("queries_remaining", event.queries_remaining);
                if let Some(c) = event.candidate {
                    line = line.int("candidate", c);
                }
                line.emit();
            }
        }
        Ok(u)
    }

    /// Evaluate an ordered batch: prefetch all uncached plans over the
    /// pool, then merge in plan order. Merging halts at the first budget
    /// exhaustion — the remaining slots report `Err(StopSearch)` with no
    /// state (not even a cache-hit counter) advanced past the cutoff,
    /// exactly as a sequential `?`-chain would leave the engine.
    pub fn evaluate_batch(&mut self, plans: &[QueryPlan]) -> Vec<Result<f64, StopSearch>> {
        self.prefetch(plans);
        let mut out = Vec::with_capacity(plans.len());
        let mut stopped = false;
        for plan in plans {
            if stopped {
                out.push(Err(StopSearch));
                continue;
            }
            let result = self.evaluate(plan);
            stopped = result.is_err();
            out.push(result);
        }
        out
    }

    /// Utility of `Din ⊕ set` as a plain sequential-kind query. Counts one
    /// query on a cache miss; returns `Err(StopSearch)` when the budget is
    /// exhausted *before* evaluating.
    pub fn utility_of(&mut self, set: &BTreeSet<CandidateId>) -> Result<f64, StopSearch> {
        self.evaluate(&QueryPlan::new(QueryKind::Sequential, set.clone()))
    }

    /// Utility of the singleton extension `base ∪ {add}`, with the
    /// monotonicity-certification wrapper (P3) applied when `certify`:
    /// the reported utility never drops below `u(base)` — a worsening
    /// augmentation is *ignored* (the paper's wrapper) and flagged.
    ///
    /// Returns `(effective_utility, raw_utility, ignored)`.
    pub fn utility_extend(
        &mut self,
        base: &BTreeSet<CandidateId>,
        add: CandidateId,
        certify: bool,
    ) -> Result<(f64, f64, bool), StopSearch> {
        let raw = self.evaluate(&QueryPlan::extend(QueryKind::Sequential, base, add))?;
        if !certify {
            return Ok((raw, raw, false));
        }
        let base_u = self.evaluate(&QueryPlan::new(QueryKind::Sequential, base.clone()))?;
        if raw < base_u {
            self.certification_ignored += 1;
            Ok((base_u, raw, true))
        } else {
            Ok((raw, raw, false))
        }
    }

    /// Convenience: utility of the un-augmented `Din` (a base-kind query).
    pub fn base_utility(&mut self) -> Result<f64, StopSearch> {
        self.evaluate(&QueryPlan::new(QueryKind::Base, BTreeSet::new()))
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    //! A tiny shared fixture: `Din` with a numeric target, a repository of
    //! joinable single-column tables, and candidates/profiles over them.

    use std::sync::Arc;

    use metam_discovery::path::PathConfig;
    use metam_discovery::{generate_candidates, Candidate, DiscoveryIndex, Materializer};
    use metam_table::{Column, Table};

    /// Build a fixture with `n_ext` external joinable columns.
    pub fn fixture(n_ext: usize) -> (Table, Vec<Candidate>, Materializer) {
        let n = 40;
        let din = Table::from_columns(
            "din",
            vec![
                Column::from_strings(
                    Some("zip".into()),
                    (0..n).map(|i| Some(format!("z{i}"))).collect(),
                ),
                Column::from_floats(Some("y".into()), (0..n).map(|i| Some(i as f64)).collect()),
            ],
        )
        .unwrap();
        let mut tables = Vec::new();
        for t in 0..n_ext {
            let table = Table::from_columns(
                format!("ext{t}"),
                vec![
                    Column::from_strings(
                        Some("zipcode".into()),
                        (0..n).map(|i| Some(format!("z{i}"))).collect(),
                    ),
                    Column::from_floats(
                        Some(format!("v{t}")),
                        (0..n).map(|i| Some((i * (t + 1)) as f64)).collect(),
                    ),
                ],
            )
            .unwrap();
            tables.push(Arc::new(table));
        }
        let index = DiscoveryIndex::build(tables.clone());
        let candidates = generate_candidates(&din, &index, &PathConfig::default(), 10_000);
        (din, candidates, Materializer::new(tables))
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::fixture;
    use super::*;
    use crate::task::LinearSyntheticTask;

    fn names() -> Vec<String> {
        vec!["p".into()]
    }

    #[test]
    fn cache_hits_are_free() {
        let (din, candidates, mat) = fixture(3);
        let task = LinearSyntheticTask {
            base: 0.2,
            weights: vec![0.1; candidates.len()],
        };
        let profiles = vec![vec![0.5]; candidates.len()];
        let pnames = names();
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &pnames,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let mut engine = QueryEngine::new(&inputs, 100);
        let set: BTreeSet<usize> = [0].into();
        let u1 = engine.utility_of(&set).unwrap();
        let q = engine.queries();
        let u2 = engine.utility_of(&set).unwrap();
        assert_eq!(u1, u2);
        assert_eq!(engine.queries(), q, "cache hit must not count");
    }

    #[test]
    fn budget_stops_search() {
        let (din, candidates, mat) = fixture(3);
        let task = LinearSyntheticTask {
            base: 0.2,
            weights: vec![0.1; candidates.len()],
        };
        let profiles = vec![vec![0.5]; candidates.len()];
        let pnames = names();
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &pnames,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let mut engine = QueryEngine::new(&inputs, 2);
        assert!(engine.utility_of(&[0].into()).is_ok());
        assert!(engine.utility_of(&[1].into()).is_ok());
        assert_eq!(engine.utility_of(&[2].into()), Err(StopSearch));
        assert_eq!(engine.queries(), 2);
    }

    #[test]
    fn certification_ignores_worsening() {
        let (din, candidates, mat) = fixture(2);
        // Candidate 0 helps, candidate 1 hurts.
        let mut deltas = vec![0.0; candidates.len()];
        deltas[0] = 0.2;
        deltas[1] = -0.3;
        let task = crate::task::NonMonotoneTask { base: 0.5, deltas };
        let profiles = vec![vec![0.5]; candidates.len()];
        let pnames = names();
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &pnames,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let mut engine = QueryEngine::new(&inputs, 100);
        let base: BTreeSet<usize> = BTreeSet::new();
        let (eff, raw, ignored) = engine.utility_extend(&base, 1, true).unwrap();
        assert!(ignored);
        assert!(raw < 0.5);
        assert_eq!(eff, 0.5, "wrapper reports the base utility");
        let (eff0, _, ignored0) = engine.utility_extend(&base, 0, true).unwrap();
        assert!(!ignored0);
        assert!((eff0 - 0.7).abs() < 1e-9);
        assert_eq!(engine.certification_ignored(), 1);
    }

    #[test]
    fn trace_is_monotone_nondecreasing() {
        let (din, candidates, mat) = fixture(4);
        let mut weights = vec![0.0; candidates.len()];
        for (i, w) in weights.iter_mut().enumerate() {
            *w = (i % 3) as f64 * 0.1;
        }
        let task = LinearSyntheticTask { base: 0.1, weights };
        let profiles = vec![vec![0.5]; candidates.len()];
        let pnames = names();
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &pnames,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let mut engine = QueryEngine::new(&inputs, 100);
        for i in 0..candidates.len().min(6) {
            let _ = engine.utility_of(&[i].into());
        }
        let trace = engine.trace();
        assert!(trace
            .windows(2)
            .all(|w| w[0].utility <= w[1].utility + 1e-12));
        assert!(trace.windows(2).all(|w| w[0].queries < w[1].queries));
    }

    #[test]
    fn augmented_table_grows_by_set_size() {
        let (din, candidates, mat) = fixture(3);
        let task = LinearSyntheticTask {
            base: 0.0,
            weights: vec![0.0; candidates.len()],
        };
        let profiles = vec![vec![0.5]; candidates.len()];
        let pnames = names();
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &pnames,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let engine = QueryEngine::new(&inputs, 10);
        let t = engine.augmented_table(&[0, 1].into());
        assert_eq!(t.ncols(), din.ncols() + 2);
        assert_eq!(t.nrows(), din.nrows());
    }
}
