//! Metadata/attribute profile (§II-C): syntactic similarity of names and
//! sources, the Ver-style signal [22].

use crate::embedding::tokenize;
use crate::profile::{Profile, ProfileContext};

/// Jaccard similarity of two token sets.
pub(crate) fn token_jaccard(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let sa: std::collections::BTreeSet<&str> = a.iter().map(String::as_str).collect();
    let sb: std::collections::BTreeSet<&str> = b.iter().map(String::as_str).collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Syntactic similarity between `din`'s metadata (name, source, attribute
/// names) and the candidate's (source table, column, provenance), blended
/// with a same-source bonus.
pub struct MetadataProfile;

impl Profile for MetadataProfile {
    fn name(&self) -> &str {
        "metadata"
    }

    fn compute(&self, ctx: &ProfileContext<'_>) -> f64 {
        let mut din_tokens: Vec<String> = Vec::new();
        din_tokens.extend(tokenize(&ctx.din.name));
        for i in 0..ctx.din.ncols() {
            din_tokens.extend(tokenize(&ctx.din.column_display_name(i)));
        }
        let mut cand_tokens: Vec<String> = Vec::new();
        cand_tokens.extend(tokenize(&ctx.candidate.source_table));
        cand_tokens.extend(tokenize(&ctx.candidate.column_name));

        let name_sim = token_jaccard(&din_tokens, &cand_tokens);
        let source_sim = if !ctx.din.source.is_empty() && ctx.din.source == ctx.candidate.source {
            1.0
        } else {
            token_jaccard(&tokenize(&ctx.din.source), &tokenize(&ctx.candidate.source))
        };
        0.7 * name_sim + 0.3 * source_sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_basics() {
        let a = vec!["crime".to_string(), "rate".to_string()];
        let b = vec!["crime".to_string(), "count".to_string()];
        assert!((token_jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(token_jaccard(&[], &[]), 0.0);
    }

    #[test]
    fn duplicate_tokens_do_not_inflate() {
        let a = vec!["zip".to_string(), "zip".to_string()];
        let b = vec!["zip".to_string()];
        assert!((token_jaccard(&a, &b) - 1.0).abs() < 1e-12);
    }
}
