//! The [`Profile`] trait and parallel [`ProfileSet`] evaluation.

use std::sync::Arc;

use metam_discovery::{Candidate, Materializer};
use metam_table::sample::sample_indices;
use metam_table::{Column, Table};

use crate::vector::ProfileVector;

/// Everything a profile may look at when scoring one candidate.
pub struct ProfileContext<'a> {
    /// The input dataset.
    pub din: &'a Table,
    /// Index of the task's target attribute in `din`, when one exists
    /// (supervised tasks); profiles relating the augmentation to the target
    /// fall back to the best-matching `din` column otherwise.
    pub target_column: Option<usize>,
    /// Row sample (indices into `din` / the materialized column) on which
    /// value-based profiles are estimated.
    pub sample_indices: &'a [usize],
    /// The candidate being profiled.
    pub candidate: &'a Candidate,
    /// The materialized augmentation column (aligned with `din` rows), or
    /// `None` when materialization failed (noisy candidate).
    pub aug: Option<&'a Column>,
}

impl ProfileContext<'_> {
    /// Numeric sample of the augmentation column (row-aligned with
    /// [`Self::target_sample`]).
    pub fn aug_sample(&self) -> Vec<Option<f64>> {
        match self.aug {
            Some(col) => {
                let full = col.as_f64();
                self.sample_indices
                    .iter()
                    .map(|&i| full.get(i).copied().flatten())
                    .collect()
            }
            None => vec![None; self.sample_indices.len()],
        }
    }

    /// Numeric sample of the target column (empty when no target).
    pub fn target_sample(&self) -> Vec<Option<f64>> {
        match self.target_column {
            Some(t) => {
                let full = self.din.columns()[t].as_f64();
                self.sample_indices
                    .iter()
                    .map(|&i| full.get(i).copied().flatten())
                    .collect()
            }
            None => Vec::new(),
        }
    }
}

/// A task-independent property of a candidate augmentation, valued in
/// `[0, 1]` (Definition 7).
pub trait Profile: Send + Sync {
    /// Stable display name.
    fn name(&self) -> &str;
    /// Score one candidate. Implementations must return a finite value;
    /// the set clamps to `[0, 1]`.
    fn compute(&self, ctx: &ProfileContext<'_>) -> f64;
}

/// An ordered collection of profiles evaluated together.
#[derive(Default)]
pub struct ProfileSet {
    profiles: Vec<Box<dyn Profile>>,
}

impl ProfileSet {
    /// Empty set.
    pub fn new() -> ProfileSet {
        ProfileSet {
            profiles: Vec::new(),
        }
    }

    /// Register a profile (order defines vector coordinates).
    pub fn push(&mut self, profile: Box<dyn Profile>) {
        self.profiles.push(profile);
    }

    /// Number of profiles (`l` in the paper's analysis).
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// `true` when no profiles are registered.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Profile names in coordinate order.
    pub fn names(&self) -> Vec<&str> {
        self.profiles.iter().map(|p| p.name()).collect()
    }

    /// Evaluate one candidate.
    pub fn evaluate_one(&self, ctx: &ProfileContext<'_>) -> ProfileVector {
        self.profiles
            .iter()
            .map(|p| {
                let v = p.compute(ctx);
                if v.is_finite() {
                    v.clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Evaluate every candidate, in parallel, on a seeded row sample of
    /// `sample_size` records (the paper's setting is 100).
    ///
    /// Candidates whose materialization fails get an all-zero vector — they
    /// are the "erroneous" candidates the search must discard on its own.
    pub fn evaluate_all(
        &self,
        din: &Table,
        target_column: Option<usize>,
        candidates: &[Candidate],
        materializer: &Materializer,
        sample_size: usize,
        seed: u64,
    ) -> Vec<ProfileVector> {
        let indices = sample_indices(din.nrows(), sample_size, seed);
        let n_threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        metam_pool::map(candidates, n_threads, |cand| {
            let aug: Option<Arc<Column>> = materializer.materialize(din, cand).ok();
            let ctx = ProfileContext {
                din,
                target_column,
                sample_indices: &indices,
                candidate: cand,
                aug: aug.as_deref(),
            };
            self.evaluate_one(&ctx)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_discovery::{generate_candidates, DiscoveryIndex};
    use metam_table::Column;

    struct ConstProfile(f64);
    impl Profile for ConstProfile {
        fn name(&self) -> &str {
            "const"
        }
        fn compute(&self, _ctx: &ProfileContext<'_>) -> f64 {
            self.0
        }
    }

    fn setup() -> (Table, Materializer, Vec<Candidate>) {
        let din = Table::from_columns(
            "din",
            vec![
                Column::from_strings(
                    Some("zip".into()),
                    (0..30).map(|i| Some(format!("z{i}"))).collect(),
                ),
                Column::from_floats(Some("y".into()), (0..30).map(|i| Some(i as f64)).collect()),
            ],
        )
        .unwrap();
        let t = Table::from_columns(
            "ext",
            vec![
                Column::from_strings(
                    Some("zipcode".into()),
                    (0..30).map(|i| Some(format!("z{i}"))).collect(),
                ),
                Column::from_floats(
                    Some("v".into()),
                    (0..30).map(|i| Some(2.0 * i as f64)).collect(),
                ),
            ],
        )
        .unwrap();
        let tables = vec![Arc::new(t)];
        let index = DiscoveryIndex::build(tables.clone());
        let cands = generate_candidates(
            &din,
            &index,
            &metam_discovery::path::PathConfig::default(),
            10,
        );
        (din, Materializer::new(tables), cands)
    }

    #[test]
    fn clamping_and_nan_handling() {
        let mut set = ProfileSet::new();
        set.push(Box::new(ConstProfile(3.0)));
        set.push(Box::new(ConstProfile(-1.0)));
        set.push(Box::new(ConstProfile(f64::NAN)));
        let (din, mat, cands) = setup();
        let vecs = set.evaluate_all(&din, Some(1), &cands, &mat, 10, 0);
        assert_eq!(vecs[0], vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn evaluation_is_deterministic_and_parallel_safe() {
        let mut set = ProfileSet::new();
        set.push(Box::new(crate::overlap::OverlapProfile));
        let (din, mat, cands) = setup();
        let a = set.evaluate_all(&din, Some(1), &cands, &mat, 10, 7);
        let b = set.evaluate_all(&din, Some(1), &cands, &mat, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), cands.len());
    }

    #[test]
    fn names_in_order() {
        let mut set = ProfileSet::new();
        set.push(Box::new(ConstProfile(0.5)));
        set.push(Box::new(crate::overlap::OverlapProfile));
        assert_eq!(set.names(), vec!["const", "overlap"]);
        assert_eq!(set.len(), 2);
    }
}
