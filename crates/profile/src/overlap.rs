//! Dataset-overlap profile (§II-C): cardinality of the augmented dataset,
//! expressed as the fraction of `Din` rows that received a joined value —
//! the statistic the S4/Ver-style Overlap baseline ranks by.

use crate::profile::{Profile, ProfileContext};

/// Fill ratio of the materialized augmentation on the sampled rows.
pub struct OverlapProfile;

impl Profile for OverlapProfile {
    fn name(&self) -> &str {
        "overlap"
    }

    fn compute(&self, ctx: &ProfileContext<'_>) -> f64 {
        let Some(col) = ctx.aug else { return 0.0 };
        if ctx.sample_indices.is_empty() {
            return 0.0;
        }
        let filled = ctx
            .sample_indices
            .iter()
            .filter(|&&i| !col.get(i).is_null())
            .count();
        filled as f64 / ctx.sample_indices.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_discovery::{Candidate, JoinPath};
    use metam_table::{Column, Table};

    fn fake_candidate() -> Candidate {
        Candidate {
            id: 0,
            path: JoinPath::single(0, 0, 0),
            value_column: 1,
            name: "x".into(),
            source_table: "t".into(),
            column_name: "c".into(),
            source: String::new(),
            discovered_containment: 1.0,
        }
    }

    #[test]
    fn overlap_counts_non_nulls() {
        let din = Table::from_columns(
            "din",
            vec![Column::from_floats(Some("y".into()), vec![Some(1.0); 4])],
        )
        .unwrap();
        let aug = Column::from_floats(None, vec![Some(1.0), None, Some(2.0), None]);
        let cand = fake_candidate();
        let idx = [0usize, 1, 2, 3];
        let ctx = ProfileContext {
            din: &din,
            target_column: Some(0),
            sample_indices: &idx,
            candidate: &cand,
            aug: Some(&aug),
        };
        assert_eq!(OverlapProfile.compute(&ctx), 0.5);
    }

    #[test]
    fn missing_materialization_scores_zero() {
        let din = Table::from_columns(
            "din",
            vec![Column::from_floats(Some("y".into()), vec![Some(1.0)])],
        )
        .unwrap();
        let cand = fake_candidate();
        let idx = [0usize];
        let ctx = ProfileContext {
            din: &din,
            target_column: Some(0),
            sample_indices: &idx,
            candidate: &cand,
            aug: None,
        };
        assert_eq!(OverlapProfile.compute(&ctx), 0.0);
    }
}
