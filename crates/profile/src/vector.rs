//! Profile vectors and the clustering metric.

/// A candidate's profile values, all in `[0, 1]`, one per registered
/// profile, in registration order.
pub type ProfileVector = Vec<f64>;

/// The distance the paper clusters with: `d(P1, P2) = max_i |r1_i − r2_i|`
/// over profiles (§IV-B CLUSTER-PARTITION). L∞ makes the ε-cover argument
/// (Lemma 2) a literal grid cover.
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "profile vectors must align");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_max_coordinate_gap() {
        assert_eq!(linf_distance(&[0.0, 0.5], &[0.1, 0.9]), 0.4);
    }

    #[test]
    fn distance_identity_and_symmetry() {
        let a = [0.2, 0.7, 0.4];
        let b = [0.9, 0.1, 0.4];
        assert_eq!(linf_distance(&a, &a), 0.0);
        assert_eq!(linf_distance(&a, &b), linf_distance(&b, &a));
    }

    #[test]
    fn triangle_inequality_holds() {
        let a = [0.1, 0.2];
        let b = [0.5, 0.9];
        let c = [0.3, 0.4];
        assert!(linf_distance(&a, &b) <= linf_distance(&a, &c) + linf_distance(&c, &b) + 1e-12);
    }
}
