#![forbid(unsafe_code)]
//! # metam-profile
//!
//! Task-independent *data profiles* (paper Definition 7 and §II-C). A
//! profile maps a candidate augmentation to a value in `[0, 1]`; the vector
//! of all profile values is Metam's representation of a candidate — it
//! drives clustering (property P2) and the quality-score prior.
//!
//! Implemented profiles, mirroring §II-C:
//!
//! * [`correlation`] — |Pearson| between the augmentation and the target,
//! * [`mutual_info`] — normalized mutual information with the target,
//! * [`embedding`] — cosine similarity of hashed token embeddings (our
//!   deterministic stand-in for BERT; see DESIGN.md substitutions),
//! * [`metadata`] — syntactic similarity of names/sources (Ver-style),
//! * [`overlap`] — fill ratio of the materialized augmentation (join
//!   cardinality),
//! * [`task_specific`] — ARDA-style injection feature importance (Fig. 7),
//! * [`synthetic`] — fixed informative/uninformative profiles for the
//!   ablation experiments (Figs. 9–11),
//! * [`rank_correlation`] — Spearman ρ, an extension profile (robust to
//!   monotone transforms and outliers; §II-C "Extending to other data
//!   profiles").
//!
//! Profiles are computed on a seeded row sample (the paper uses 100
//! records) and evaluated in parallel across candidates over the shared
//! worker pool (`metam-pool`).

#![warn(missing_docs)]

pub mod correlation;
pub mod embedding;
pub mod metadata;
pub mod mutual_info;
pub mod overlap;
pub mod profile;
pub mod rank_correlation;
pub mod synthetic;
pub mod task_specific;
pub mod vector;

pub use profile::{Profile, ProfileContext, ProfileSet};
pub use vector::{linf_distance, ProfileVector};

/// The paper's default profile set: correlation, mutual information,
/// semantic embedding, metadata similarity and dataset overlap.
pub fn default_profiles() -> ProfileSet {
    let mut set = ProfileSet::new();
    set.push(Box::new(correlation::CorrelationProfile));
    set.push(Box::new(mutual_info::MutualInfoProfile::default()));
    set.push(Box::new(embedding::EmbeddingProfile));
    set.push(Box::new(metadata::MetadataProfile));
    set.push(Box::new(overlap::OverlapProfile));
    set
}
