//! Task-specific (ARDA feature-importance) profile for Fig. 7.
//!
//! The paper shows Metam accelerates further when given *informative,
//! task-specific* profiles from ARDA [37]: here, the forest feature
//! importance of the augmentation when appended to `Din`'s features.

use metam_ml::dataset::{encode_table, TargetKind};
use metam_ml::forest::{RandomForest, RandomForestConfig};
use metam_ml::tree::{TreeConfig, TreeTask};

use crate::profile::{Profile, ProfileContext};

/// Importance of the augmentation column in a quick forest fit on the
/// sampled rows of `Din ⊕ aug`.
pub struct TaskSpecificProfile {
    /// Whether the downstream target is categorical.
    pub classification: bool,
    /// Seed for the forest fit.
    pub seed: u64,
}

impl Profile for TaskSpecificProfile {
    fn name(&self) -> &str {
        "arda_importance"
    }

    fn compute(&self, ctx: &ProfileContext<'_>) -> f64 {
        let (Some(target), Some(aug)) = (ctx.target_column, ctx.aug) else {
            return 0.0;
        };
        // Small augmented sample table.
        let sampled = ctx.din.take_rows(ctx.sample_indices);
        let aug_sampled = aug.take(ctx.sample_indices).with_name("__aug__");
        let Ok(table) = sampled.with_column(aug_sampled) else {
            return 0.0;
        };
        let target_name = ctx.din.column_display_name(target);
        let kind = if self.classification {
            TargetKind::Classification
        } else {
            TargetKind::Regression
        };
        let Ok(data) = encode_table(&table, &target_name, kind) else {
            return 0.0;
        };
        if data.len() < 10 {
            return 0.0;
        }
        let task = if self.classification {
            TreeTask::Classification {
                n_classes: data.n_classes.unwrap_or(2).max(2),
            }
        } else {
            TreeTask::Regression
        };
        let forest = RandomForest::fit(
            &data,
            task,
            RandomForestConfig {
                n_trees: 6,
                tree: TreeConfig {
                    max_depth: 6,
                    ..Default::default()
                },
                seed: self.seed,
            },
        );
        let importances = forest.feature_importances();
        data.feature_names
            .iter()
            .position(|n| n == "__aug__")
            .and_then(|i| importances.get(i).copied())
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_discovery::{Candidate, JoinPath};
    use metam_table::{Column, Table};

    fn candidate() -> Candidate {
        Candidate {
            id: 0,
            path: JoinPath::single(0, 0, 0),
            value_column: 0,
            name: String::new(),
            source_table: "ext".into(),
            column_name: "v".into(),
            source: String::new(),
            discovered_containment: 1.0,
        }
    }

    #[test]
    fn informative_augmentation_scores_higher_than_noise() {
        let n = 120;
        let target: Vec<Option<f64>> = (0..n)
            .map(|i| Some(if i % 2 == 0 { 1.0 } else { 0.0 }))
            .collect();
        let base: Vec<Option<f64>> = (0..n).map(|i| Some(((i * 31) % 7) as f64)).collect();
        let din = Table::from_columns(
            "din",
            vec![
                Column::from_floats(Some("noise".into()), base),
                Column::from_floats(Some("label".into()), target.clone()),
            ],
        )
        .unwrap();
        let informative = Column::from_floats(
            None,
            (0..n)
                .map(|i| Some(if i % 2 == 0 { 5.0 } else { -5.0 }))
                .collect(),
        );
        let junk =
            Column::from_floats(None, (0..n).map(|i| Some(((i * 17) % 11) as f64)).collect());
        let cand = candidate();
        let indices: Vec<usize> = (0..n).collect();
        let profile = TaskSpecificProfile {
            classification: true,
            seed: 0,
        };

        let score_info = profile.compute(&ProfileContext {
            din: &din,
            target_column: Some(1),
            sample_indices: &indices,
            candidate: &cand,
            aug: Some(&informative),
        });
        let score_junk = profile.compute(&ProfileContext {
            din: &din,
            target_column: Some(1),
            sample_indices: &indices,
            candidate: &cand,
            aug: Some(&junk),
        });
        assert!(
            score_info > score_junk + 0.2,
            "info={score_info} junk={score_junk}"
        );
    }

    #[test]
    fn missing_target_scores_zero() {
        let din = Table::from_columns(
            "din",
            vec![Column::from_floats(Some("x".into()), vec![Some(1.0); 5])],
        )
        .unwrap();
        let cand = candidate();
        let profile = TaskSpecificProfile {
            classification: true,
            seed: 0,
        };
        let score = profile.compute(&ProfileContext {
            din: &din,
            target_column: None,
            sample_indices: &[0, 1, 2],
            candidate: &cand,
            aug: None,
        });
        assert_eq!(score, 0.0);
    }
}
