//! Synthetic profiles for the informativeness ablations (Figs. 9–11).
//!
//! The paper varies *how informative* the profile set is. These profiles
//! are constructed with knowledge of each candidate's planted relevance
//! (informative, with controllable noise) or from a seeded RNG only
//! (uninformative): exactly the knobs Figs. 9 and 10 sweep.

use crate::profile::{Profile, ProfileContext};

/// A profile whose value is a fixed per-candidate lookup table.
///
/// Candidates missing from the table score 0. This is the building block
/// for both informative and uninformative synthetic profiles — the bench
/// harness fills the table from ground truth or from noise.
pub struct FixedProfile {
    name: String,
    values: Vec<f64>,
}

impl FixedProfile {
    /// Build from per-candidate-id values (clamped to `[0, 1]`).
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> FixedProfile {
        FixedProfile {
            name: name.into(),
            values: values.into_iter().map(|v| v.clamp(0.0, 1.0)).collect(),
        }
    }

    /// An *informative* profile: relevance signal plus bounded noise.
    ///
    /// `relevance[i] ∈ [0,1]` is the planted ground-truth usefulness of
    /// candidate `i`; `noise ∈ [0,1]` controls corruption (0 = oracle).
    pub fn informative(
        name: impl Into<String>,
        relevance: &[f64],
        noise: f64,
        seed: u64,
    ) -> FixedProfile {
        let mut state = seed ^ 0xD1B5_4A32_D192_ED03;
        let values = relevance
            .iter()
            .map(|&r| {
                let u = next_unit(&mut state);
                ((1.0 - noise) * r + noise * u).clamp(0.0, 1.0)
            })
            .collect();
        FixedProfile::new(name, values)
    }

    /// An *uninformative* profile: pure seeded noise, independent of
    /// relevance.
    pub fn uninformative(name: impl Into<String>, n: usize, seed: u64) -> FixedProfile {
        let mut state = seed ^ 0x94D0_49BB_1331_11EB;
        let values = (0..n).map(|_| next_unit(&mut state)).collect();
        FixedProfile::new(name, values)
    }
}

fn next_unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    z as f64 / u64::MAX as f64
}

impl Profile for FixedProfile {
    fn name(&self) -> &str {
        &self.name
    }

    fn compute(&self, ctx: &ProfileContext<'_>) -> f64 {
        self.values.get(ctx.candidate.id).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_discovery::{Candidate, JoinPath};
    use metam_table::{Column, Table};

    fn ctx_for<'a>(din: &'a Table, cand: &'a Candidate) -> ProfileContext<'a> {
        ProfileContext {
            din,
            target_column: None,
            sample_indices: &[],
            candidate: cand,
            aug: None,
        }
    }

    fn candidate(id: usize) -> Candidate {
        Candidate {
            id,
            path: JoinPath::single(0, 0, 0),
            value_column: 0,
            name: String::new(),
            source_table: String::new(),
            column_name: String::new(),
            source: String::new(),
            discovered_containment: 0.0,
        }
    }

    #[test]
    fn fixed_profile_looks_up_by_id() {
        let din = Table::from_columns(
            "din",
            vec![Column::from_floats(Some("y".into()), vec![Some(1.0)])],
        )
        .unwrap();
        let p = FixedProfile::new("fp", vec![0.25, 0.75]);
        assert_eq!(p.compute(&ctx_for(&din, &candidate(1))), 0.75);
        assert_eq!(
            p.compute(&ctx_for(&din, &candidate(9))),
            0.0,
            "unknown id scores 0"
        );
    }

    #[test]
    fn informative_with_zero_noise_is_oracle() {
        let p = FixedProfile::informative("i", &[0.1, 0.9], 0.0, 7);
        assert_eq!(p.values, vec![0.1, 0.9]);
    }

    #[test]
    fn informative_tracks_relevance_under_noise() {
        let relevance: Vec<f64> = (0..200).map(|i| if i < 100 { 0.9 } else { 0.1 }).collect();
        let p = FixedProfile::informative("i", &relevance, 0.3, 1);
        let hi: f64 = p.values[..100].iter().sum::<f64>() / 100.0;
        let lo: f64 = p.values[100..].iter().sum::<f64>() / 100.0;
        assert!(hi > lo + 0.3, "hi={hi} lo={lo}");
    }

    #[test]
    fn uninformative_is_seed_deterministic() {
        let a = FixedProfile::uninformative("u", 50, 3);
        let b = FixedProfile::uninformative("u", 50, 3);
        let c = FixedProfile::uninformative("u", 50, 4);
        assert_eq!(a.values, b.values);
        assert_ne!(a.values, c.values);
        assert!(a.values.iter().all(|v| (0.0..=1.0).contains(v)));
    }
}
