//! Spearman rank-correlation profile.
//!
//! An *extension profile* in the sense of §II-C "Extending to other data
//! profiles": Pearson misses monotone-but-nonlinear relationships (e.g.
//! price vs. log-income); rank correlation catches them and is robust to
//! the outliers that open data is full of. Plug it in with
//! `ProfileSet::push` exactly like the defaults.

use crate::profile::{Profile, ProfileContext};

/// |Spearman ρ| between the augmentation and the target on the row sample.
pub struct RankCorrelationProfile;

/// Average ranks (ties share the mean rank).
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = mean_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman ρ over paired optional samples (pairs with a missing side are
/// skipped; < 3 complete pairs ⇒ 0).
pub fn option_spearman(xs: &[Option<f64>], ys: &[Option<f64>]) -> f64 {
    let pairs: Vec<(f64, f64)> = xs.iter().zip(ys).filter_map(|(x, y)| x.zip(*y)).collect();
    if pairs.len() < 3 {
        return 0.0;
    }
    let xr = ranks(&pairs.iter().map(|p| p.0).collect::<Vec<_>>());
    let yr = ranks(&pairs.iter().map(|p| p.1).collect::<Vec<_>>());
    let n = pairs.len() as f64;
    let mx = xr.iter().sum::<f64>() / n;
    let my = yr.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xr.iter().zip(&yr) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx < 1e-15 || vy < 1e-15 {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

impl Profile for RankCorrelationProfile {
    fn name(&self) -> &str {
        "rank_correlation"
    }

    fn compute(&self, ctx: &ProfileContext<'_>) -> f64 {
        let target = ctx.target_sample();
        if target.is_empty() {
            return 0.0;
        }
        option_spearman(&ctx.aug_sample(), &target).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[5.0]), vec![1.0]);
    }

    #[test]
    fn monotone_nonlinear_scores_one() {
        // y = exp(x): Pearson < 1, Spearman = 1.
        let xs: Vec<Option<f64>> = (0..30).map(|i| Some(i as f64)).collect();
        let ys: Vec<Option<f64>> = (0..30).map(|i| Some((i as f64 * 0.4).exp())).collect();
        assert!((option_spearman(&xs, &ys) - 1.0).abs() < 1e-9);
        let pearson = crate::correlation::option_pearson(&xs, &ys);
        assert!(
            pearson < 0.95,
            "pearson should under-score the exponential: {pearson}"
        );
    }

    #[test]
    fn anti_monotone_scores_minus_one() {
        let xs: Vec<Option<f64>> = (0..20).map(|i| Some(i as f64)).collect();
        let ys: Vec<Option<f64>> = (0..20).map(|i| Some(-(i as f64).powi(3))).collect();
        assert!((option_spearman(&xs, &ys) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn outlier_robustness_beats_pearson() {
        // Clean weak monotone trend + one enormous outlier.
        let mut xs: Vec<Option<f64>> = (0..30).map(|i| Some(i as f64)).collect();
        let mut ys: Vec<Option<f64>> = (0..30).map(|i| Some(i as f64 + (i % 3) as f64)).collect();
        xs.push(Some(31.0));
        ys.push(Some(-1e9));
        let spearman = option_spearman(&xs, &ys).abs();
        let pearson = crate::correlation::option_pearson(&xs, &ys).abs();
        assert!(spearman > 0.8, "rank stays high: {spearman}");
        assert!(
            pearson < 0.5,
            "pearson collapses under the outlier: {pearson}"
        );
    }

    #[test]
    fn missing_pairs_skipped() {
        let xs = vec![Some(1.0), None, Some(3.0), Some(4.0)];
        let ys = vec![Some(1.0), Some(9.0), Some(3.0), Some(4.0)];
        assert!((option_spearman(&xs, &ys) - 1.0).abs() < 1e-9);
    }
}
