//! Pearson-correlation profile (§II-C "Correlation and Mutual Information").

use crate::profile::{Profile, ProfileContext};

/// |Pearson correlation| between the candidate augmentation and the task's
/// target attribute, estimated on the row sample. Pairs where either side
/// is missing are skipped; fewer than 3 complete pairs score 0.
pub struct CorrelationProfile;

/// Pearson over paired optional samples.
pub(crate) fn option_pearson(xs: &[Option<f64>], ys: &[Option<f64>]) -> f64 {
    let pairs: Vec<(f64, f64)> = xs.iter().zip(ys).filter_map(|(x, y)| x.zip(*y)).collect();
    if pairs.len() < 3 {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in &pairs {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx < 1e-15 || vy < 1e-15 {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

impl Profile for CorrelationProfile {
    fn name(&self) -> &str {
        "correlation"
    }

    fn compute(&self, ctx: &ProfileContext<'_>) -> f64 {
        let aug = ctx.aug_sample();
        let target = ctx.target_sample();
        if target.is_empty() {
            // Unsupervised task: best correlation against any numeric Din column.
            let mut best: f64 = 0.0;
            for ci in ctx.din.numeric_column_indices() {
                let full = ctx.din.columns()[ci].as_f64();
                let col: Vec<Option<f64>> = ctx
                    .sample_indices
                    .iter()
                    .map(|&i| full.get(i).copied().flatten())
                    .collect();
                best = best.max(option_pearson(&aug, &col).abs());
            }
            return best;
        }
        option_pearson(&aug, &target).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_pearson_skips_missing_pairs() {
        let xs = vec![Some(1.0), None, Some(2.0), Some(3.0), Some(4.0)];
        let ys = vec![Some(2.0), Some(9.0), Some(4.0), Some(6.0), Some(8.0)];
        assert!((option_pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn too_few_pairs_scores_zero() {
        assert_eq!(
            option_pearson(&[Some(1.0), None], &[Some(1.0), Some(2.0)]),
            0.0
        );
    }

    #[test]
    fn anticorrelation_magnitude() {
        let xs: Vec<Option<f64>> = (0..10).map(|i| Some(i as f64)).collect();
        let ys: Vec<Option<f64>> = (0..10).map(|i| Some(-(i as f64))).collect();
        assert!((option_pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }
}
