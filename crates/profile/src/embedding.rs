//! Semantic-embedding profile (§II-C).
//!
//! The paper averages BERT token embeddings over table tokens and compares
//! datasets by cosine similarity. We substitute deterministic *feature
//! hashing*: every token hashes to a pseudo-random unit vector, a dataset
//! embeds as the mean of its token vectors, and similar vocabularies yield
//! high cosine — the property P2 clustering actually relies on (see
//! DESIGN.md, substitutions).

use std::hash::{Hash, Hasher};

use crate::profile::{Profile, ProfileContext};

/// Embedding dimensionality.
pub const EMBED_DIM: usize = 64;

fn token_hash(token: &str) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    token.hash(&mut h);
    h.finish()
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic pseudo-random unit vector for one token.
pub fn token_vector(token: &str) -> [f64; EMBED_DIM] {
    let base = token_hash(&token.to_ascii_lowercase());
    let mut v = [0.0; EMBED_DIM];
    let mut norm = 0.0;
    for (i, slot) in v.iter_mut().enumerate() {
        let bits = mix64(base ^ mix64(i as u64 ^ 0x9E3779B97F4A7C15));
        // Map to (-1, 1).
        let x = (bits as f64 / u64::MAX as f64) * 2.0 - 1.0;
        *slot = x;
        norm += x * x;
    }
    let norm = norm.sqrt().max(1e-12);
    for slot in &mut v {
        *slot /= norm;
    }
    v
}

/// Mean token vector over an iterator of tokens (zero vector when empty).
pub fn embed_tokens<'a>(tokens: impl Iterator<Item = &'a str>) -> [f64; EMBED_DIM] {
    let mut sum = [0.0; EMBED_DIM];
    let mut count = 0usize;
    for t in tokens {
        if t.is_empty() {
            continue;
        }
        let v = token_vector(t);
        for (s, x) in sum.iter_mut().zip(v.iter()) {
            *s += x;
        }
        count += 1;
    }
    if count > 0 {
        for s in &mut sum {
            *s /= count as f64;
        }
    }
    sum
}

/// Cosine similarity (0 when either side is a zero vector).
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    (dot / (na * nb)).clamp(-1.0, 1.0)
}

/// Tokens describing a candidate: source table name, column name, source
/// tag, and a sample of the materialized values.
fn candidate_tokens(ctx: &ProfileContext<'_>) -> Vec<String> {
    let mut tokens: Vec<String> = Vec::new();
    for field in [
        &ctx.candidate.source_table,
        &ctx.candidate.column_name,
        &ctx.candidate.source,
    ] {
        tokens.extend(tokenize(field));
    }
    if let Some(col) = ctx.aug {
        for &i in ctx.sample_indices.iter().take(50) {
            if let Some(k) = col.get(i).join_key() {
                tokens.extend(tokenize(&k));
            }
        }
    }
    tokens
}

/// Tokens describing `din`: its name, source, column names and sampled values.
fn din_tokens(ctx: &ProfileContext<'_>) -> Vec<String> {
    let mut tokens: Vec<String> = Vec::new();
    tokens.extend(tokenize(&ctx.din.name));
    tokens.extend(tokenize(&ctx.din.source));
    for i in 0..ctx.din.ncols() {
        tokens.extend(tokenize(&ctx.din.column_display_name(i)));
    }
    for col in ctx.din.columns() {
        for &i in ctx.sample_indices.iter().take(20) {
            if let Some(k) = col.get(i).join_key() {
                tokens.extend(tokenize(&k));
            }
        }
    }
    tokens
}

/// Lower-cased alphanumeric word split.
pub fn tokenize(text: &str) -> Vec<String> {
    text.to_ascii_lowercase()
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect()
}

/// Cosine similarity between the hashed embeddings of `din` and the
/// candidate's table/column/values, mapped from `[-1, 1]` to `[0, 1]`.
#[derive(Default)]
pub struct EmbeddingProfile;

impl Profile for EmbeddingProfile {
    fn name(&self) -> &str {
        "embedding"
    }

    fn compute(&self, ctx: &ProfileContext<'_>) -> f64 {
        let a = embed_tokens(din_tokens(ctx).iter().map(String::as_str));
        let b = embed_tokens(candidate_tokens(ctx).iter().map(String::as_str));
        (cosine(&a, &b) + 1.0) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_vectors_are_unit_and_deterministic() {
        let v1 = token_vector("income");
        let v2 = token_vector("income");
        assert_eq!(v1, v2);
        let norm: f64 = v1.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_vocabulary_embeds_identically() {
        let a = embed_tokens(["crime", "rate", "zip"].into_iter());
        let b = embed_tokens(["zip", "crime", "rate"].into_iter());
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_tokens_beat_disjoint_tokens() {
        let base = embed_tokens(["housing", "price", "zip"].into_iter());
        let near = embed_tokens(["housing", "price", "county"].into_iter());
        let far = embed_tokens(["penguin", "velocity", "quark"].into_iter());
        assert!(cosine(&base, &near) > cosine(&base, &far));
    }

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("Crime-Rate_2020 (zip)"),
            vec!["crime", "rate", "2020", "zip"]
        );
        assert!(tokenize("--- ").is_empty());
    }

    #[test]
    fn cosine_zero_vector_safe() {
        let z = [0.0; EMBED_DIM];
        let v = token_vector("x");
        assert_eq!(cosine(&z, &v), 0.0);
    }
}
