//! Mutual-information profile (§II-C).
//!
//! Numeric values are discretized into equi-width bins; MI is normalized by
//! `min(H(X), H(Y))` so the profile lands in `[0, 1]`.

use crate::profile::{Profile, ProfileContext};

/// Normalized mutual information between augmentation and target.
pub struct MutualInfoProfile {
    /// Number of equi-width bins for numeric discretization.
    pub bins: usize,
}

impl Default for MutualInfoProfile {
    fn default() -> Self {
        MutualInfoProfile { bins: 8 }
    }
}

/// Equi-width binning of present values; `None` stays `None`.
fn discretize(values: &[Option<f64>], bins: usize) -> Vec<Option<usize>> {
    let present: Vec<f64> = values.iter().flatten().copied().collect();
    if present.is_empty() {
        return vec![None; values.len()];
    }
    let lo = present.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = present.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| {
            v.map(|x| {
                (((x - lo) / span) * bins as f64)
                    .floor()
                    .min(bins as f64 - 1.0) as usize
            })
        })
        .collect()
}

/// Normalized MI over paired discretized samples.
pub(crate) fn normalized_mi(xs: &[Option<usize>], ys: &[Option<usize>], bins: usize) -> f64 {
    let pairs: Vec<(usize, usize)> = xs.iter().zip(ys).filter_map(|(x, y)| x.zip(*y)).collect();
    let n = pairs.len();
    if n < 3 {
        return 0.0;
    }
    let mut joint = vec![vec![0.0; bins]; bins];
    let mut px = vec![0.0; bins];
    let mut py = vec![0.0; bins];
    let inv = 1.0 / n as f64;
    for (x, y) in &pairs {
        joint[*x][*y] += inv;
        px[*x] += inv;
        py[*y] += inv;
    }
    let mut mi = 0.0;
    for x in 0..bins {
        for y in 0..bins {
            let pxy = joint[x][y];
            if pxy > 0.0 {
                mi += pxy * (pxy / (px[x] * py[y])).ln();
            }
        }
    }
    let hx: f64 = -px
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f64>();
    let hy: f64 = -py
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f64>();
    let denom = hx.min(hy);
    if denom < 1e-12 {
        return 0.0;
    }
    (mi / denom).clamp(0.0, 1.0)
}

impl Profile for MutualInfoProfile {
    fn name(&self) -> &str {
        "mutual_info"
    }

    fn compute(&self, ctx: &ProfileContext<'_>) -> f64 {
        let target = ctx.target_sample();
        if target.is_empty() {
            return 0.0;
        }
        let aug = ctx.aug_sample();
        let dx = discretize(&aug, self.bins);
        let dy = discretize(&target, self.bins);
        normalized_mi(&dx, &dy, self.bins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_signals_have_full_mi() {
        let xs: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64)).collect();
        let dx = discretize(&xs, 8);
        assert!((normalized_mi(&dx, &dx, 8) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_signals_have_low_mi() {
        let xs: Vec<Option<f64>> = (0..200).map(|i| Some((i % 8) as f64)).collect();
        let ys: Vec<Option<f64>> = (0..200).map(|i| Some(((i * 37 + 11) % 5) as f64)).collect();
        let mi = normalized_mi(&discretize(&xs, 8), &discretize(&ys, 8), 8);
        assert!(mi < 0.25, "mi={mi}");
    }

    #[test]
    fn nonlinear_dependence_detected() {
        // y = x² has near-zero Pearson on symmetric x, but high MI.
        let xs: Vec<Option<f64>> = (-50..50).map(|i| Some(i as f64)).collect();
        let ys: Vec<Option<f64>> = (-50..50).map(|i| Some((i * i) as f64)).collect();
        let mi = normalized_mi(&discretize(&xs, 8), &discretize(&ys, 8), 8);
        assert!(mi > 0.5, "mi={mi}");
        let r = crate::correlation::option_pearson(&xs, &ys).abs();
        assert!(r < 0.1, "pearson should miss the parabola: {r}");
    }

    #[test]
    fn missing_values_skipped() {
        let xs = vec![None, Some(1.0), Some(2.0), Some(3.0)];
        let ys = vec![Some(9.0), Some(1.0), Some(2.0), Some(3.0)];
        let mi = normalized_mi(&discretize(&xs, 4), &discretize(&ys, 4), 4);
        assert!((0.0..=1.0).contains(&mi));
    }

    #[test]
    fn constant_column_scores_zero() {
        let xs: Vec<Option<f64>> = (0..50).map(|_| Some(1.0)).collect();
        let ys: Vec<Option<f64>> = (0..50).map(|i| Some(i as f64)).collect();
        assert_eq!(
            normalized_mi(&discretize(&xs, 8), &discretize(&ys, 8), 8),
            0.0
        );
    }
}
