#![forbid(unsafe_code)]
//! # metam-causal
//!
//! Causal-inference substrate for the Metam reproduction, standing in for
//! the `causal-learn` library the paper uses ([44]).
//!
//! The paper's prescriptive tasks score utility as *the fraction of
//! correctly identified causally-related attributes (p-value ≤ 0.05)*
//! (§VI-A, what-if and how-to analysis). This crate supplies the pieces:
//!
//! * first- and second-moment statistics ([`stats`]),
//! * Fisher-z (partial-)correlation independence tests with p-values
//!   ([`independence`]),
//! * DAGs with ancestry queries ([`graph`]),
//! * a PC-style constraint-based skeleton discovery ([`discovery`]),
//! * linear-SEM total-effect estimation ([`effects`]),
//! * what-if (affected attributes of an update) and how-to (drivers of an
//!   outcome) analyses ([`whatif`]) built on top.

#![warn(missing_docs)]

pub mod discovery;
pub mod effects;
pub mod graph;
pub mod independence;
pub mod stats;
pub mod whatif;

pub use graph::Dag;
pub use independence::{fisher_z_test, partial_correlation, IndependenceTest};
pub use whatif::{affected_attributes, causal_drivers};
