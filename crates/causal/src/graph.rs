//! Directed acyclic graphs over attribute indices.
//!
//! Used both for the *planted* ground-truth structure in synthetic data and
//! for representing discovered structure.

use std::collections::VecDeque;

/// A DAG over `n` nodes with adjacency lists. Edges are `parent → child`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dag {
    n: usize,
    children: Vec<Vec<usize>>,
    parents: Vec<Vec<usize>>,
}

impl Dag {
    /// Empty DAG over `n` nodes.
    pub fn new(n: usize) -> Self {
        Dag {
            n,
            children: vec![Vec::new(); n],
            parents: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add edge `from → to`. Panics if it would create a cycle or is out of
    /// bounds (planted graphs are built programmatically; a cycle is a bug).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(from < self.n && to < self.n, "edge out of bounds");
        assert!(from != to, "self loop");
        assert!(
            !self.is_ancestor(to, from),
            "edge {from}→{to} would create a cycle"
        );
        if !self.children[from].contains(&to) {
            self.children[from].push(to);
            self.parents[to].push(from);
        }
    }

    /// Direct children.
    pub fn children(&self, node: usize) -> &[usize] {
        &self.children[node]
    }

    /// Direct parents.
    pub fn parents(&self, node: usize) -> &[usize] {
        &self.parents[node]
    }

    /// Is `a` an ancestor of `b` (a ⇝ b)?
    pub fn is_ancestor(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut queue = VecDeque::from([a]);
        seen[a] = true;
        while let Some(u) = queue.pop_front() {
            for &c in &self.children[u] {
                if c == b {
                    return true;
                }
                if !seen[c] {
                    seen[c] = true;
                    queue.push_back(c);
                }
            }
        }
        false
    }

    /// All strict descendants of `node`, sorted.
    pub fn descendants(&self, node: usize) -> Vec<usize> {
        let mut seen = vec![false; self.n];
        let mut queue = VecDeque::from([node]);
        let mut out = Vec::new();
        while let Some(u) = queue.pop_front() {
            for &c in &self.children[u] {
                if !seen[c] {
                    seen[c] = true;
                    out.push(c);
                    queue.push_back(c);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// All strict ancestors of `node`, sorted.
    pub fn ancestors(&self, node: usize) -> Vec<usize> {
        let mut seen = vec![false; self.n];
        let mut queue = VecDeque::from([node]);
        let mut out = Vec::new();
        while let Some(u) = queue.pop_front() {
            for &p in &self.parents[u] {
                if !seen[p] {
                    seen[p] = true;
                    out.push(p);
                    queue.push_back(p);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// A topological ordering (stable: among ready nodes, the smallest index
    /// first).
    pub fn topological_order(&self) -> Vec<usize> {
        let mut indegree: Vec<usize> = self.parents.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = (0..self.n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(&u) = ready.first() {
            ready.remove(0);
            order.push(u);
            for &c in &self.children[u] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    // keep `ready` sorted for determinism
                    let pos = ready.partition_point(|&x| x < c);
                    ready.insert(pos, c);
                }
            }
        }
        order
    }

    /// Edge count.
    pub fn n_edges(&self) -> usize {
        self.children.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 → 1 → 3, 0 → 2 → 3
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn ancestry_queries() {
        let g = diamond();
        assert!(g.is_ancestor(0, 3));
        assert!(!g.is_ancestor(3, 0));
        assert_eq!(g.descendants(0), vec![1, 2, 3]);
        assert_eq!(g.ancestors(3), vec![0, 1, 2]);
        assert_eq!(g.descendants(3), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_rejected() {
        let mut g = diamond();
        g.add_edge(3, 0);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order();
        assert_eq!(order.len(), 4);
        let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Dag::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.n_edges(), 1);
    }
}
