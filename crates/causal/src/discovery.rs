//! PC-style constraint-based structure discovery (skeleton phase).
//!
//! A deterministic, small-scale equivalent of causal-learn's PC: start from
//! the complete graph and remove edges whose endpoints test independent
//! given conditioning sets of growing size drawn from current neighbours.
//! Orientation is not needed by the paper's utility metrics (they count
//! correctly identified *related* attributes), so we stop at the skeleton.

use crate::independence::fisher_z_test;

/// Discovered undirected skeleton: `adjacency[i]` lists i's neighbours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Skeleton {
    /// Sorted adjacency lists.
    pub adjacency: Vec<Vec<usize>>,
}

impl Skeleton {
    /// Are `a` and `b` adjacent?
    pub fn connected(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].contains(&b)
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }
}

/// All size-`k` subsets of `pool` in lexicographic order.
fn subsets(pool: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k > pool.len() {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| pool[i]).collect());
        // advance combination
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + pool.len() - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// PC skeleton over column-major data.
///
/// `alpha` is the independence-test significance level; `max_cond` bounds
/// the conditioning-set size (2 suffices at our attribute counts).
pub fn pc_skeleton(columns: &[Vec<f64>], alpha: f64, max_cond: usize) -> Skeleton {
    let k = columns.len();
    let mut adj: Vec<Vec<usize>> = (0..k)
        .map(|i| (0..k).filter(|&j| j != i).collect())
        .collect();

    for cond_size in 0..=max_cond {
        // Snapshot edges to visit this level (stable order).
        let mut edges: Vec<(usize, usize)> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for i in 0..k {
            for &j in &adj[i] {
                if i < j {
                    edges.push((i, j));
                }
            }
        }
        for (i, j) in edges {
            if !adj[i].contains(&j) {
                continue;
            }
            // Conditioning candidates: neighbours of i excluding j.
            let pool: Vec<usize> = adj[i].iter().copied().filter(|&v| v != j).collect();
            let mut separated = false;
            for subset in subsets(&pool, cond_size) {
                let refs: Vec<&[f64]> = subset.iter().map(|&c| columns[c].as_slice()).collect();
                let test = fisher_z_test(&columns[i], &columns[j], &refs);
                if !test.dependent(alpha) {
                    separated = true;
                    break;
                }
            }
            if separated {
                adj[i].retain(|&v| v != j);
                adj[j].retain(|&v| v != i);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
    }
    Skeleton { adjacency: adj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn noise(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn subsets_enumerate_correctly() {
        let s = subsets(&[1, 2, 3], 2);
        assert_eq!(s, vec![vec![1, 2], vec![1, 3], vec![2, 3]]);
        assert_eq!(subsets(&[1, 2], 0), vec![Vec::<usize>::new()]);
        assert!(subsets(&[1], 2).is_empty());
    }

    #[test]
    fn chain_skeleton_recovered() {
        // 0 → 1 → 2: skeleton edges {0-1, 1-2}, and 0-2 removed given 1.
        let n = 500;
        let x0 = noise(1, n);
        let e1 = noise(2, n);
        let e2 = noise(3, n);
        let x1: Vec<f64> = x0.iter().zip(&e1).map(|(a, e)| a + 0.3 * e).collect();
        let x2: Vec<f64> = x1.iter().zip(&e2).map(|(a, e)| a + 0.3 * e).collect();
        let s = pc_skeleton(&[x0, x1, x2], 0.05, 2);
        assert!(s.connected(0, 1));
        assert!(s.connected(1, 2));
        assert!(
            !s.connected(0, 2),
            "indirect link must be cut by conditioning"
        );
    }

    #[test]
    fn independent_variables_disconnected() {
        let s = pc_skeleton(&[noise(4, 300), noise(5, 300), noise(6, 300)], 0.01, 1);
        assert_eq!(s.n_edges(), 0);
    }

    #[test]
    fn deterministic() {
        let cols = vec![noise(7, 200), noise(8, 200)];
        assert_eq!(pc_skeleton(&cols, 0.05, 1), pc_skeleton(&cols, 0.05, 1));
    }
}
