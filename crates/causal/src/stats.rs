//! Moment statistics on numeric slices.

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population covariance of paired samples.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance needs paired samples");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64
}

/// Pearson correlation in `[-1, 1]`; 0 when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let vx = variance(xs);
    let vy = variance(ys);
    if vx < 1e-15 || vy < 1e-15 {
        return 0.0;
    }
    (covariance(xs, ys) / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

/// Correlation matrix of column-major data (each inner vec is one variable).
pub fn correlation_matrix(columns: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = columns.len();
    let mut m = vec![vec![0.0; k]; k];
    #[allow(clippy::needless_range_loop)]
    for i in 0..k {
        m[i][i] = 1.0;
        for j in (i + 1)..k {
            let r = pearson(&columns[i], &columns[j]);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max abs error ≈ 1.5e-7, plenty for p-value thresholding at 0.05).
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-(x * x) / 2.0).exp();
    if x >= 0.0 {
        0.5 * (1.0 + erf)
    } else {
        0.5 * (1.0 - erf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn correlation_matrix_symmetric_unit_diagonal() {
        let cols = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 1.0, 4.0, 3.0],
            vec![0.0, 5.0, 1.0, 2.0],
        ];
        let m = correlation_matrix(&cols);
        for i in 0..3 {
            assert!((m[i][i] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((m[i][j] - m[j][i]).abs() < 1e-12);
                assert!(m[i][j].abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999999);
    }
}
