//! Fisher-z conditional-independence tests.
//!
//! The standard test behind PC-style discovery: partial correlation of X and
//! Y given Z, Fisher-transformed; the statistic is approximately standard
//! normal under independence.

use metam_ml::matrix::ridge_solve;
use metam_ml::Matrix;

use crate::stats::{normal_cdf, pearson};

/// Result of one independence test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndependenceTest {
    /// Estimated (partial) correlation.
    pub correlation: f64,
    /// Two-sided p-value for the null "X ⟂ Y | Z".
    pub p_value: f64,
}

impl IndependenceTest {
    /// Reject independence at significance `alpha`?
    pub fn dependent(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

/// Residualize `target` on the conditioning columns via ridge regression.
fn residuals(target: &[f64], conditioning: &[&[f64]]) -> Vec<f64> {
    if conditioning.is_empty() {
        return target.to_vec();
    }
    let n = target.len();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            let mut row: Vec<f64> = conditioning.iter().map(|c| c[r]).collect();
            row.push(1.0); // intercept
            row
        })
        .collect();
    let x = Matrix::from_rows(&rows);
    match ridge_solve(&x, target, 1e-6) {
        Some(w) => (0..n)
            .map(|r| {
                let pred: f64 = rows[r].iter().zip(&w).map(|(a, b)| a * b).sum();
                target[r] - pred
            })
            .collect(),
        None => target.to_vec(),
    }
}

/// Partial correlation of `x` and `y` given the conditioning set `z`
/// (computed by double residualization, the textbook recursion's stable
/// equivalent).
pub fn partial_correlation(x: &[f64], y: &[f64], z: &[&[f64]]) -> f64 {
    let rx = residuals(x, z);
    let ry = residuals(y, z);
    pearson(&rx, &ry)
}

/// Fisher-z test of `x ⟂ y | z`.
///
/// The z statistic is `sqrt(n - |z| - 3) * atanh(r)`; the p-value is the
/// two-sided normal tail. Degenerate sample sizes return p = 1 (never
/// reject).
pub fn fisher_z_test(x: &[f64], y: &[f64], z: &[&[f64]]) -> IndependenceTest {
    let n = x.len();
    let r = partial_correlation(x, y, z);
    let dof = n as f64 - z.len() as f64 - 3.0;
    if dof <= 0.0 {
        return IndependenceTest {
            correlation: r,
            p_value: 1.0,
        };
    }
    // Clamp away from ±1 so atanh stays finite.
    let r_safe = r.clamp(-0.999999, 0.999999);
    let stat = dof.sqrt() * 0.5 * ((1.0 + r_safe) / (1.0 - r_safe)).ln();
    let p = 2.0 * (1.0 - normal_cdf(stat.abs()));
    IndependenceTest {
        correlation: r,
        p_value: p.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn noise(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn detects_marginal_dependence() {
        let x = noise(1, 200);
        let y: Vec<f64> = x
            .iter()
            .zip(noise(2, 200))
            .map(|(a, e)| a + 0.2 * e)
            .collect();
        let t = fisher_z_test(&x, &y, &[]);
        assert!(t.dependent(0.05), "p={}", t.p_value);
    }

    #[test]
    fn accepts_independence() {
        let x = noise(3, 200);
        let y = noise(4, 200);
        let t = fisher_z_test(&x, &y, &[]);
        assert!(!t.dependent(0.01), "p={}", t.p_value);
    }

    #[test]
    fn conditioning_blocks_chain() {
        // x → m → y: x ⟂ y | m, but x and y are marginally dependent.
        let x = noise(5, 400);
        let em = noise(6, 400);
        let ey = noise(7, 400);
        let m: Vec<f64> = x.iter().zip(&em).map(|(a, e)| a + 0.2 * e).collect();
        let y: Vec<f64> = m.iter().zip(&ey).map(|(a, e)| a + 0.2 * e).collect();
        assert!(fisher_z_test(&x, &y, &[]).dependent(0.05));
        let cond = fisher_z_test(&x, &y, &[&m]);
        assert!(
            cond.correlation.abs() < 0.3,
            "partial correlation should shrink: {}",
            cond.correlation
        );
        assert!(cond.p_value > fisher_z_test(&x, &y, &[]).p_value);
    }

    #[test]
    fn tiny_samples_never_reject() {
        let t = fisher_z_test(&[1.0, 2.0], &[2.0, 4.0], &[]);
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn partial_correlation_bounded() {
        let x = noise(8, 100);
        let y = noise(9, 100);
        let z = noise(10, 100);
        let r = partial_correlation(&x, &y, &[&z]);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn perfect_correlation_significant() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let t = fisher_z_test(&x, &x, &[]);
        assert!(t.p_value < 1e-6);
        assert!((t.correlation - 1.0).abs() < 1e-9);
    }
}
