//! What-if and how-to analyses (paper §II-B, §VI-A).
//!
//! *What-if*: given a hypothetical update to attribute X, which attributes
//! would be causally affected? We return attributes that remain dependent
//! on X after conditioning (PC-skeleton reachability from X), matching the
//! "fraction of correctly identified attributes (p-value ≤ 0.05)" utility.
//!
//! *How-to*: which attributes should be updated to move an outcome? We
//! return attributes adjacent to the outcome in the skeleton, ranked by
//! standardized total effect.

use std::collections::VecDeque;

use crate::discovery::pc_skeleton;
use crate::effects::standardized_effects;

/// Attributes (column indices ≠ `x`) judged causally affected by an update
/// to column `x`: skeleton-reachable from `x` at significance `alpha`.
pub fn affected_attributes(columns: &[Vec<f64>], x: usize, alpha: f64) -> Vec<usize> {
    let k = columns.len();
    if k == 0 || x >= k {
        return Vec::new();
    }
    let skeleton = pc_skeleton(columns, alpha, 1);
    // BFS over the skeleton from x.
    let mut seen = vec![false; k];
    seen[x] = true;
    let mut queue = VecDeque::from([x]);
    let mut out = Vec::new();
    while let Some(u) = queue.pop_front() {
        for &v in &skeleton.adjacency[u] {
            if !seen[v] {
                seen[v] = true;
                out.push(v);
                queue.push_back(v);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Attributes judged to causally drive the outcome column `y`:
/// skeleton-neighbours of `y` with standardized effect above `threshold`,
/// strongest first.
pub fn causal_drivers(columns: &[Vec<f64>], y: usize, alpha: f64, threshold: f64) -> Vec<usize> {
    let k = columns.len();
    if k == 0 || y >= k {
        return Vec::new();
    }
    let skeleton = pc_skeleton(columns, alpha, 1);
    let neighbours = &skeleton.adjacency[y];
    if neighbours.is_empty() {
        return Vec::new();
    }
    let candidate_cols: Vec<Vec<f64>> = neighbours.iter().map(|&i| columns[i].clone()).collect();
    let effects = standardized_effects(&candidate_cols, &columns[y]);
    let mut ranked: Vec<(usize, f64)> = neighbours
        .iter()
        .copied()
        .zip(effects)
        .filter(|(_, e)| *e > threshold)
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    ranked.into_iter().map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn noise(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    /// x0 → x1 → x2; x3 independent.
    fn chain_data() -> Vec<Vec<f64>> {
        let n = 400;
        let x0 = noise(1, n);
        let x1: Vec<f64> = x0
            .iter()
            .zip(noise(2, n))
            .map(|(a, e)| a + 0.3 * e)
            .collect();
        let x2: Vec<f64> = x1
            .iter()
            .zip(noise(3, n))
            .map(|(a, e)| a + 0.3 * e)
            .collect();
        let x3 = noise(4, n);
        vec![x0, x1, x2, x3]
    }

    #[test]
    fn whatif_finds_downstream_chain() {
        let cols = chain_data();
        let affected = affected_attributes(&cols, 0, 0.05);
        assert!(affected.contains(&1));
        assert!(affected.contains(&2));
        assert!(
            !affected.contains(&3),
            "independent attribute must not appear"
        );
    }

    #[test]
    fn howto_finds_direct_driver() {
        let cols = chain_data();
        let drivers = causal_drivers(&cols, 2, 0.05, 0.01);
        assert!(
            drivers.contains(&1),
            "direct parent is a driver: {drivers:?}"
        );
        assert!(!drivers.contains(&3));
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert!(affected_attributes(&[], 0, 0.05).is_empty());
        assert!(causal_drivers(&[vec![1.0, 2.0]], 5, 0.05, 0.1).is_empty());
    }
}
