//! Total causal effects in linear SEMs.
//!
//! The paper's how-to analysis scores attributes by their *total causal
//! effect* on the outcome. In a linear structural equation model the total
//! effect of X on Y equals the regression coefficient of X in a regression
//! of Y on X plus a valid adjustment set; we use standardized ridge
//! coefficients (regression of Y on all candidate attributes), which matches
//! the monotone "support of identified causal relationship" utility the
//! paper describes.

use metam_ml::RidgeRegression;

use crate::stats::variance;

/// Standardized total-effect estimates of each column on the outcome:
/// the absolute standardized coefficient of a ridge regression of
/// `outcome` on `columns`.
pub fn standardized_effects(columns: &[Vec<f64>], outcome: &[f64]) -> Vec<f64> {
    if columns.is_empty() || outcome.is_empty() {
        return vec![0.0; columns.len()];
    }
    let n = outcome.len();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|r| columns.iter().map(|c| c[r]).collect())
        .collect();
    let model = RidgeRegression::fit(&rows, outcome, 1e-3);
    let sd_y = variance(outcome).sqrt().max(1e-12);
    model
        .coefficients()
        .iter()
        .map(|w| (w / sd_y).abs())
        .collect()
}

/// Indices of columns whose standardized effect on the outcome exceeds
/// `threshold`, sorted by effect size descending (ties by index).
pub fn strong_effects(columns: &[Vec<f64>], outcome: &[f64], threshold: f64) -> Vec<usize> {
    let effects = standardized_effects(columns, outcome);
    let mut idx: Vec<usize> = (0..effects.len())
        .filter(|&i| effects[i] > threshold)
        .collect();
    idx.sort_by(|&a, &b| {
        effects[b]
            .partial_cmp(&effects[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn noise(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn effect_found_for_true_cause() {
        let n = 300;
        let cause = noise(1, n);
        let junk = noise(2, n);
        let e = noise(3, n);
        let y: Vec<f64> = cause
            .iter()
            .zip(&e)
            .map(|(c, e)| 2.0 * c + 0.1 * e)
            .collect();
        let effects = standardized_effects(&[cause, junk], &y);
        assert!(effects[0] > 3.0 * effects[1], "effects={effects:?}");
    }

    #[test]
    fn strong_effects_ranked() {
        let n = 300;
        let strong = noise(4, n);
        let weak = noise(5, n);
        let e = noise(6, n);
        let y: Vec<f64> = (0..n)
            .map(|i| 3.0 * strong[i] + 0.5 * weak[i] + 0.1 * e[i])
            .collect();
        let ranked = strong_effects(&[weak.clone(), strong.clone()], &y, 0.05);
        assert_eq!(
            ranked.first(),
            Some(&1),
            "strongest cause first: {ranked:?}"
        );
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(standardized_effects(&[], &[]).is_empty());
        assert!(strong_effects(&[], &[1.0], 0.1).is_empty());
    }
}
