//! Hash joins used to materialize join paths.
//!
//! Join-path materialization (paper Definition 3/4) always keeps the input
//! dataset's rows intact, so everything here is a *left* join: each left row
//! picks up the first matching right row, or nulls when no match exists.
//! First-match semantics keeps the augmented table row-aligned with `Din`,
//! which the paper's `Γ(Din, P[j])` projection requires.

use std::collections::HashMap;

use crate::column::Column;
use crate::error::TableError;
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// A single equi-join hop: `left.left_key == right.right_key`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// Key column index on the left side.
    pub left_key: usize,
    /// Key column index on the right side.
    pub right_key: usize,
}

/// Build a first-match lookup from normalized key to row index.
///
/// Exposed because multi-hop materialization in the discovery crate chains
/// row mappings through intermediate tables.
pub fn first_match_index(col: &Column) -> HashMap<String, usize> {
    key_index(col)
}

fn key_index(col: &Column) -> HashMap<String, usize> {
    let keys = col.join_keys();
    let mut map = HashMap::with_capacity(keys.len());
    for (row, key) in keys.into_iter().enumerate() {
        if let Some(k) = key {
            map.entry(k).or_insert(row);
        }
    }
    map
}

/// For each left row, the matching right row (first match), if any.
pub fn match_rows(left_key: &Column, right_key: &Column) -> Result<Vec<Option<usize>>> {
    let index = key_index(right_key);
    if index.is_empty() {
        return Err(TableError::EmptyJoinKey);
    }
    Ok(left_key
        .join_keys()
        .into_iter()
        .map(|k| k.and_then(|k| index.get(&k).copied()))
        .collect())
}

/// Fraction of left keys that find a match on the right; the *dataset
/// overlap* statistic used by the overlap profile and the Overlap baseline.
pub fn match_ratio(left_key: &Column, right_key: &Column) -> f64 {
    let index = key_index(right_key);
    if left_key.is_empty() || index.is_empty() {
        return 0.0;
    }
    let keys = left_key.join_keys();
    let hits = keys
        .iter()
        .filter(|k| k.as_ref().is_some_and(|k| index.contains_key(k)))
        .count();
    hits as f64 / keys.len() as f64
}

/// Left-join a single value column: for every left row, the value of
/// `right[value_col]` on the first matching right row (null on no match).
///
/// This is the workhorse of augmentation materialization: a candidate
/// augmentation is exactly one such projected column.
pub fn left_join_column(
    left: &Table,
    left_key: usize,
    right: &Table,
    right_key: usize,
    value_col: usize,
) -> Result<Column> {
    let lk = left.column(left_key)?;
    let rk = right.column(right_key)?;
    let vc = right.column(value_col)?;
    let matches = match_rows(lk, rk)?;
    let values: Vec<Value> = matches
        .into_iter()
        .map(|m| m.map_or(Value::Null, |row| vc.get(row)))
        .collect();
    Ok(Column::from_values(vc.name.clone(), values))
}

/// Left-join whole tables: the result keeps all left columns and appends all
/// right columns except the join key, with name-collision suffixing.
pub fn join_tables(left: &Table, right: &Table, spec: &JoinSpec) -> Result<Table> {
    let lk = left.column(spec.left_key)?;
    let rk = right.column(spec.right_key)?;
    let matches = match_rows(lk, rk)?;

    let mut out = left.clone();
    for (ci, col) in right.columns().iter().enumerate() {
        if ci == spec.right_key {
            continue;
        }
        let values: Vec<Value> = matches
            .iter()
            .map(|m| m.map_or(Value::Null, |row| col.get(row)))
            .collect();
        let mut new_col = Column::from_values(col.name.clone(), values);
        if let Some(name) = &new_col.name {
            if out.column_index(name).is_ok() {
                new_col.name = Some(format!("{}_{}", name, right.name));
            }
        }
        out.add_column(new_col)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn left() -> Table {
        Table::from_columns(
            "din",
            vec![
                Column::from_strings(
                    Some("zip".into()),
                    vec![
                        Some("60614".into()),
                        Some("60615".into()),
                        Some("99999".into()),
                        None,
                    ],
                ),
                Column::from_floats(
                    Some("price".into()),
                    vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0)],
                ),
            ],
        )
        .unwrap()
    }

    fn right() -> Table {
        Table::from_columns(
            "crime",
            vec![
                Column::from_strings(
                    Some("zipcode".into()),
                    vec![
                        Some("60615".into()),
                        Some("60614".into()),
                        Some("60614".into()),
                    ],
                ),
                Column::from_floats(
                    Some("crimes".into()),
                    vec![Some(10.0), Some(20.0), Some(999.0)],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn left_join_column_first_match_and_nulls() {
        let c = left_join_column(&left(), 0, &right(), 0, 1).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(0), Value::Float(20.0), "first match wins, not 999");
        assert_eq!(c.get(1), Value::Float(10.0));
        assert_eq!(c.get(2), Value::Null, "unmatched key");
        assert_eq!(c.get(3), Value::Null, "null key never matches");
    }

    #[test]
    fn match_ratio_counts_hits() {
        // 2 of 4 left rows (60614, 60615) match.
        assert!(
            (match_ratio(left().column(0).unwrap(), right().column(0).unwrap()) - 0.5).abs()
                < 1e-12
        );
    }

    #[test]
    fn join_tables_appends_non_key_columns() {
        let j = join_tables(
            &left(),
            &right(),
            &JoinSpec {
                left_key: 0,
                right_key: 0,
            },
        )
        .unwrap();
        assert_eq!(j.ncols(), 3);
        assert_eq!(j.nrows(), 4);
        assert_eq!(
            j.column_by_name("crimes").unwrap().get(1),
            Value::Float(10.0)
        );
    }

    #[test]
    fn join_tables_suffixes_collisions() {
        let r = Table::from_columns(
            "other",
            vec![
                Column::from_strings(Some("zipcode".into()), vec![Some("60614".into())]),
                Column::from_floats(Some("price".into()), vec![Some(7.0)]),
            ],
        )
        .unwrap();
        let j = join_tables(
            &left(),
            &r,
            &JoinSpec {
                left_key: 0,
                right_key: 0,
            },
        )
        .unwrap();
        assert!(j.column_by_name("price_other").is_ok());
    }

    #[test]
    fn empty_key_errors() {
        let r = Table::from_columns(
            "empty",
            vec![
                Column::from_strings(Some("k".into()), vec![None, None]),
                Column::from_floats(Some("v".into()), vec![Some(1.0), Some(2.0)]),
            ],
        )
        .unwrap();
        assert!(matches!(
            left_join_column(&left(), 0, &r, 0, 1),
            Err(TableError::EmptyJoinKey)
        ));
    }

    #[test]
    fn numeric_keys_join_with_string_keys() {
        let l = Table::from_columns(
            "l",
            vec![Column::from_ints(Some("zip".into()), vec![Some(60614)])],
        )
        .unwrap();
        let c = left_join_column(&l, 0, &right(), 0, 1).unwrap();
        assert_eq!(c.get(0), Value::Float(20.0));
    }
}
