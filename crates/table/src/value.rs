//! Scalar cell values and parsing.

use std::fmt;

/// A single (possibly missing) cell value.
///
/// Tables in open repositories are noisy: a column routinely mixes numbers,
/// free text and blanks. `Value` is the dynamic scalar used at cell
/// granularity; [`crate::Column`] stores homogeneous typed vectors and only
/// falls back to `Str` when parsing fails.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. Never NaN (NaN is normalized to `Null`).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Parse a raw text field into the most specific value type.
    ///
    /// Empty strings and common null markers become [`Value::Null`].
    pub fn parse(raw: &str) -> Value {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Value::Null;
        }
        match trimmed.to_ascii_lowercase().as_str() {
            "na" | "n/a" | "null" | "none" | "nan" | "-" => return Value::Null,
            "true" => return Value::Bool(true),
            "false" => return Value::Bool(false),
            _ => {}
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(x) = trimmed.parse::<f64>() {
            if x.is_nan() {
                return Value::Null;
            }
            return Value::Float(x);
        }
        Value::Str(trimmed.to_string())
    }

    /// `true` when the value is missing.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: integers and floats convert, booleans map to 0/1,
    /// everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Normalized string key used for joins and containment sketches.
    ///
    /// Join keys in open data disagree on case and padding far more often
    /// than on content, so keys are compared lower-cased and trimmed.
    /// Integral floats normalize to their integer spelling so `60614.0`
    /// joins with `60614`.
    pub fn join_key(&self) -> Option<String> {
        match self {
            Value::Null => None,
            Value::Int(i) => Some(i.to_string()),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    Some(format!("{}", *x as i64))
                } else {
                    Some(format!("{x}"))
                }
            }
            Value::Str(s) => {
                let k = s.trim().to_ascii_lowercase();
                if k.is_empty() {
                    None
                } else {
                    Some(k)
                }
            }
            Value::Bool(b) => Some(b.to_string()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_nan() {
            Value::Null
        } else {
            Value::Float(v)
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_detects_integers() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse(" -7 "), Value::Int(-7));
    }

    #[test]
    fn parse_detects_floats() {
        assert_eq!(Value::parse("3.25"), Value::Float(3.25));
        assert_eq!(Value::parse("1e3"), Value::Float(1000.0));
    }

    #[test]
    fn parse_detects_nulls() {
        for raw in ["", "  ", "NA", "n/a", "null", "None", "NaN", "-"] {
            assert_eq!(Value::parse(raw), Value::Null, "raw={raw:?}");
        }
    }

    #[test]
    fn parse_detects_bools_and_strings() {
        assert_eq!(Value::parse("true"), Value::Bool(true));
        assert_eq!(Value::parse("FALSE"), Value::Bool(false));
        assert_eq!(Value::parse("Chicago"), Value::Str("Chicago".into()));
    }

    #[test]
    fn nan_float_becomes_null() {
        assert_eq!(Value::from(f64::NAN), Value::Null);
    }

    #[test]
    fn join_key_normalizes_case_and_numbers() {
        assert_eq!(
            Value::Str(" Chicago ".into()).join_key(),
            Some("chicago".into())
        );
        assert_eq!(Value::Float(60614.0).join_key(), Some("60614".into()));
        assert_eq!(Value::Int(60614).join_key(), Some("60614".into()));
        assert_eq!(Value::Null.join_key(), None);
    }

    #[test]
    fn as_f64_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }
}
