//! Error type shared by all table operations.

use std::fmt;

/// Errors produced by the table substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A column name could not be resolved against the schema.
    ColumnNotFound(String),
    /// A column index was out of bounds.
    ColumnIndexOutOfBounds {
        /// Requested index.
        index: usize,
        /// Number of columns in the table.
        len: usize,
    },
    /// Columns appended to a table must all have the same number of rows.
    LengthMismatch {
        /// Expected row count.
        expected: usize,
        /// Row count of the offending column.
        actual: usize,
    },
    /// The operation needed a numeric column but got something else.
    NotNumeric(String),
    /// Malformed CSV input.
    Csv(String),
    /// Malformed binary columnar (`.mtc`) payload.
    ColBin(String),
    /// Two tables could not be aligned for a union.
    UnionMismatch(String),
    /// A join was requested on an empty or all-null key column.
    EmptyJoinKey,
    /// A deferred table provider failed to deliver a repository table
    /// (e.g. a lake file vanished between indexing and materialization).
    Provider(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
            TableError::ColumnIndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "column index {index} out of bounds for table with {len} columns"
                )
            }
            TableError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "column length mismatch: expected {expected} rows, got {actual}"
                )
            }
            TableError::NotNumeric(name) => write!(f, "column {name:?} is not numeric"),
            TableError::Csv(msg) => write!(f, "csv error: {msg}"),
            TableError::ColBin(msg) => write!(f, "colbin error: {msg}"),
            TableError::UnionMismatch(msg) => write!(f, "union mismatch: {msg}"),
            TableError::EmptyJoinKey => write!(f, "join key column has no usable values"),
            TableError::Provider(msg) => write!(f, "table provider error: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}
