//! Typed, nullable columns with cheap numeric/key views and basic statistics.

use crate::schema::DataType;
use crate::value::Value;

/// Homogeneous storage behind a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Nullable integers.
    Int(Vec<Option<i64>>),
    /// Nullable floats (never NaN; NaN normalizes to null).
    Float(Vec<Option<f64>>),
    /// Nullable strings.
    Str(Vec<Option<String>>),
    /// Nullable booleans.
    Bool(Vec<Option<bool>>),
}

/// A named, typed, nullable column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Attribute name, possibly missing (noisy schema).
    pub name: Option<String>,
    data: ColumnData,
}

impl Column {
    /// Integer column.
    pub fn from_ints(name: impl Into<Option<String>>, data: Vec<Option<i64>>) -> Self {
        Column {
            name: name.into(),
            data: ColumnData::Int(data),
        }
    }

    /// Float column. NaNs are normalized to nulls.
    pub fn from_floats(name: impl Into<Option<String>>, data: Vec<Option<f64>>) -> Self {
        let data = data
            .into_iter()
            .map(|v| v.filter(|x| !x.is_nan()))
            .collect();
        Column {
            name: name.into(),
            data: ColumnData::Float(data),
        }
    }

    /// String column.
    pub fn from_strings(name: impl Into<Option<String>>, data: Vec<Option<String>>) -> Self {
        Column {
            name: name.into(),
            data: ColumnData::Str(data),
        }
    }

    /// Boolean column.
    pub fn from_bools(name: impl Into<Option<String>>, data: Vec<Option<bool>>) -> Self {
        Column {
            name: name.into(),
            data: ColumnData::Bool(data),
        }
    }

    /// Build a column from dynamic values, choosing the narrowest type that
    /// fits every non-null value (Int ⊂ Float; anything else ⇒ Str).
    pub fn from_values(name: impl Into<Option<String>>, values: Vec<Value>) -> Self {
        let name = name.into();
        let mut all_int = true;
        let mut all_num = true;
        let mut all_bool = true;
        for v in &values {
            match v {
                Value::Null => {}
                Value::Int(_) => {
                    all_bool = false;
                }
                Value::Float(_) => {
                    all_int = false;
                    all_bool = false;
                }
                Value::Bool(_) => {
                    all_int = false;
                    all_num = false;
                }
                Value::Str(_) => {
                    all_int = false;
                    all_num = false;
                    all_bool = false;
                }
            }
        }
        if all_bool {
            let data = values
                .into_iter()
                .map(|v| match v {
                    Value::Bool(b) => Some(b),
                    _ => None,
                })
                .collect();
            return Column {
                name,
                data: ColumnData::Bool(data),
            };
        }
        if all_int {
            let data = values
                .into_iter()
                .map(|v| match v {
                    Value::Int(i) => Some(i),
                    _ => None,
                })
                .collect();
            return Column {
                name,
                data: ColumnData::Int(data),
            };
        }
        if all_num {
            let data = values.into_iter().map(|v| v.as_f64()).collect();
            return Column {
                name,
                data: ColumnData::Float(data),
            };
        }
        let data = values
            .into_iter()
            .map(|v| match v {
                Value::Null => None,
                other => Some(other.to_string()),
            })
            .collect();
        Column {
            name,
            data: ColumnData::Str(data),
        }
    }

    /// Logical type.
    pub fn dtype(&self) -> DataType {
        match &self.data {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }

    /// Raw storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dynamic value at `row` (out-of-bounds ⇒ `Null`).
    pub fn get(&self, row: usize) -> Value {
        match &self.data {
            ColumnData::Int(v) => v
                .get(row)
                .copied()
                .flatten()
                .map_or(Value::Null, Value::Int),
            ColumnData::Float(v) => v
                .get(row)
                .copied()
                .flatten()
                .map_or(Value::Null, Value::Float),
            ColumnData::Str(v) => v
                .get(row)
                .and_then(|o| o.clone())
                .map_or(Value::Null, Value::Str),
            ColumnData::Bool(v) => v
                .get(row)
                .copied()
                .flatten()
                .map_or(Value::Null, Value::Bool),
        }
    }

    /// Number of missing values.
    pub fn null_count(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Str(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Fraction of non-null values.
    pub fn fill_ratio(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        1.0 - self.null_count() as f64 / self.len() as f64
    }

    /// Numeric view: `None` per row when the value is null or non-numeric.
    pub fn as_f64(&self) -> Vec<Option<f64>> {
        match &self.data {
            ColumnData::Int(v) => v.iter().map(|x| x.map(|i| i as f64)).collect(),
            ColumnData::Float(v) => v.clone(),
            ColumnData::Bool(v) => v
                .iter()
                .map(|x| x.map(|b| if b { 1.0 } else { 0.0 }))
                .collect(),
            ColumnData::Str(v) => v
                .iter()
                .map(|x| x.as_deref().and_then(|s| s.trim().parse::<f64>().ok()))
                .collect(),
        }
    }

    /// Normalized join keys per row (see [`Value::join_key`]).
    pub fn join_keys(&self) -> Vec<Option<String>> {
        (0..self.len()).map(|i| self.get(i).join_key()).collect()
    }

    /// Sorted, deduplicated set of normalized keys. Used by the discovery
    /// index for containment estimation.
    pub fn distinct_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.join_keys().into_iter().flatten().collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Mean of the numeric view (ignoring nulls); `None` when no numeric
    /// values exist.
    pub fn mean(&self) -> Option<f64> {
        let vals: Vec<f64> = self.as_f64().into_iter().flatten().collect();
        if vals.is_empty() {
            return None;
        }
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }

    /// Population standard deviation of the numeric view.
    pub fn std(&self) -> Option<f64> {
        let vals: Vec<f64> = self.as_f64().into_iter().flatten().collect();
        if vals.is_empty() {
            return None;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / vals.len() as f64;
        Some(var.sqrt())
    }

    /// Minimum of the numeric view.
    pub fn min(&self) -> Option<f64> {
        self.as_f64()
            .into_iter()
            .flatten()
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.min(x))))
    }

    /// Maximum of the numeric view.
    pub fn max(&self) -> Option<f64> {
        self.as_f64()
            .into_iter()
            .flatten()
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// Number of distinct non-null keys.
    pub fn distinct_count(&self) -> usize {
        self.distinct_keys().len()
    }

    /// Keep only the rows at `indices` (cloning values), e.g. for sampling.
    pub fn take(&self, indices: &[usize]) -> Column {
        let values: Vec<Value> = indices.iter().map(|&i| self.get(i)).collect();
        Column::from_values(self.name.clone(), values)
    }

    /// Rename, builder style.
    pub fn with_name(mut self, name: impl Into<String>) -> Column {
        self.name = Some(name.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float_col(vals: &[f64]) -> Column {
        Column::from_floats(
            Some("x".to_string()),
            vals.iter().map(|&v| Some(v)).collect(),
        )
    }

    #[test]
    fn from_values_narrows_types() {
        let c = Column::from_values(None, vec![Value::Int(1), Value::Null, Value::Int(3)]);
        assert_eq!(c.dtype(), DataType::Int);
        let c = Column::from_values(None, vec![Value::Int(1), Value::Float(0.5)]);
        assert_eq!(c.dtype(), DataType::Float);
        let c = Column::from_values(None, vec![Value::Int(1), Value::Str("a".into())]);
        assert_eq!(c.dtype(), DataType::Str);
        let c = Column::from_values(None, vec![Value::Bool(true), Value::Null]);
        assert_eq!(c.dtype(), DataType::Bool);
    }

    #[test]
    fn stats_ignore_nulls() {
        let c = Column::from_floats(None, vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(c.mean(), Some(2.0));
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(3.0));
        assert_eq!(c.null_count(), 1);
        assert!((c.fill_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn std_of_constant_is_zero() {
        let c = float_col(&[5.0, 5.0, 5.0]);
        assert_eq!(c.std(), Some(0.0));
    }

    #[test]
    fn numeric_view_parses_strings() {
        let c = Column::from_strings(None, vec![Some("1.5".into()), Some("oops".into()), None]);
        assert_eq!(c.as_f64(), vec![Some(1.5), None, None]);
    }

    #[test]
    fn distinct_keys_normalize_and_dedup() {
        let c = Column::from_strings(
            None,
            vec![
                Some("Chicago".into()),
                Some(" chicago ".into()),
                Some("NYC".into()),
                None,
            ],
        );
        assert_eq!(
            c.distinct_keys(),
            vec!["chicago".to_string(), "nyc".to_string()]
        );
        assert_eq!(c.distinct_count(), 2);
    }

    #[test]
    fn take_selects_rows() {
        let c = Column::from_ints(None, vec![Some(10), Some(20), Some(30)]);
        let t = c.take(&[2, 0]);
        assert_eq!(t.get(0), Value::Int(30));
        assert_eq!(t.get(1), Value::Int(10));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn get_out_of_bounds_is_null() {
        let c = float_col(&[1.0]);
        assert_eq!(c.get(5), Value::Null);
    }

    #[test]
    fn nan_is_normalized_to_null() {
        let c = Column::from_floats(None, vec![Some(f64::NAN), Some(1.0)]);
        assert_eq!(c.null_count(), 1);
    }
}
