#![forbid(unsafe_code)]
//! # metam-table
//!
//! A small in-memory columnar table engine used as the data substrate for the
//! Metam reproduction. It models the paper's notion of *noisy structured
//! data* (Definition 1): relations may have missing header values, missing
//! cell values and duplicate rows, and repositories (Definition 2) are plain
//! collections of such tables.
//!
//! The engine provides exactly what goal-oriented data discovery needs:
//!
//! * typed, nullable columns ([`Column`]) with cheap numeric views,
//! * schemas with possibly-absent attribute names ([`Schema`]),
//! * hash (left) joins used to materialize join paths ([`join`]),
//! * unions for record-addition augmentations ([`union`]),
//! * seeded row sampling for cheap profile estimation ([`sample`]),
//! * a minimal CSV reader/writer for interop ([`csv`]),
//! * a lossless binary columnar format with explicit null bitmaps, used as
//!   the lake's on-disk table cache ([`colbin`]).
//!
//! Everything is deterministic: no observable result of any operation depends
//! on hash-map iteration order.

#![warn(missing_docs)]

pub mod colbin;
pub mod column;
pub mod csv;
pub mod error;
pub mod join;
pub mod sample;
pub mod schema;
pub mod table;
pub mod union;
pub mod value;

pub use column::Column;
pub use error::TableError;
pub use join::{join_tables, left_join_column, JoinSpec};
pub use schema::{DataType, Field, Schema};
pub use table::Table;
pub use value::Value;

/// Convenient result alias for table operations.
pub type Result<T> = std::result::Result<T, TableError>;
