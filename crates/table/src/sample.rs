//! Seeded row sampling.
//!
//! The paper computes data profiles on a random sample of 100 records
//! (§VI "Settings"); this module provides the deterministic sampler used
//! for that.

use crate::table::Table;

/// Deterministic xorshift-style index shuffle. We avoid pulling `rand` into
/// this leaf crate; sampling only needs a reproducible pseudo-random
/// permutation, not statistical quality.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A reproducible sample of `k` distinct row indices from `0..n`
/// (Fisher–Yates on the prefix). When `k >= n` returns `0..n` shuffled.
pub fn sample_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..n).collect();
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    let take = k.min(n);
    for i in 0..take {
        let j = i + (splitmix64(&mut state) as usize) % (n - i);
        indices.swap(i, j);
    }
    indices.truncate(take);
    indices
}

/// A reproducible row sample of up to `k` rows.
pub fn sample_rows(table: &Table, k: usize, seed: u64) -> Table {
    let indices = sample_indices(table.nrows(), k, seed);
    table.take_rows(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn sample_is_deterministic() {
        assert_eq!(sample_indices(100, 10, 7), sample_indices(100, 10, 7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(sample_indices(1000, 20, 1), sample_indices(1000, 20, 2));
    }

    #[test]
    fn sample_has_distinct_indices_in_range() {
        let s = sample_indices(50, 25, 3);
        assert_eq!(s.len(), 25);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 25, "indices must be distinct");
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn oversized_k_returns_all() {
        let s = sample_indices(5, 100, 1);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn sample_rows_keeps_schema() {
        let t = Table::from_columns(
            "t",
            vec![Column::from_ints(
                Some("a".into()),
                (0..100).map(Some).collect(),
            )],
        )
        .unwrap();
        let s = sample_rows(&t, 10, 42);
        assert_eq!(s.nrows(), 10);
        assert_eq!(s.ncols(), 1);
        assert_eq!(s.column_by_name("a").unwrap().null_count(), 0);
    }

    #[test]
    fn empty_table_samples_empty() {
        assert!(sample_indices(0, 10, 1).is_empty());
    }
}
