//! Schemas with possibly-missing attribute names (paper Definition 1).

use std::fmt;

/// Logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings / categorical data.
    Str,
    /// Booleans.
    Bool,
}

impl DataType {
    /// Whether values of this type have a numeric view.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Bool)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
        };
        write!(f, "{s}")
    }
}

/// One attribute of a relation. The name may be absent: noisy open-data
/// tables frequently ship without header rows (`Ai = φ` in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name, if known.
    pub name: Option<String>,
    /// Logical type.
    pub dtype: DataType,
}

impl Field {
    /// Named field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: Some(name.into()),
            dtype,
        }
    }

    /// Field with a missing header value.
    pub fn anonymous(dtype: DataType) -> Self {
        Field { name: None, dtype }
    }

    /// Display name; anonymous fields render as `_colN` given their index.
    pub fn display_name(&self, index: usize) -> String {
        self.name.clone().unwrap_or_else(|| format!("_col{index}"))
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the first field with the given name (case-sensitive).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.as_deref() == Some(name))
    }

    /// Append a field.
    pub fn push(&mut self, field: Field) {
        self.fields.push(field);
    }

    /// Fraction of attributes with missing header values; a cheap noise
    /// indicator used by metadata profiles.
    pub fn missing_header_ratio(&self) -> f64 {
        if self.fields.is_empty() {
            return 0.0;
        }
        let missing = self.fields.iter().filter(|f| f.name.is_none()).count();
        missing as f64 / self.fields.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_of_finds_named_fields() {
        let schema = Schema::new(vec![
            Field::new("zipcode", DataType::Str),
            Field::anonymous(DataType::Float),
            Field::new("price", DataType::Float),
        ]);
        assert_eq!(schema.index_of("price"), Some(2));
        assert_eq!(schema.index_of("zipcode"), Some(0));
        assert_eq!(schema.index_of("missing"), None);
    }

    #[test]
    fn missing_header_ratio_counts_anonymous() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::anonymous(DataType::Str),
        ]);
        assert!((schema.missing_header_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(Schema::default().missing_header_ratio(), 0.0);
    }

    #[test]
    fn display_name_falls_back_to_index() {
        assert_eq!(Field::anonymous(DataType::Int).display_name(3), "_col3");
        assert_eq!(Field::new("x", DataType::Int).display_name(3), "x");
    }

    #[test]
    fn numeric_types() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(DataType::Bool.is_numeric());
        assert!(!DataType::Str.is_numeric());
    }
}
