//! Table unions (record-addition augmentations, paper §VI Fig. 4b).
//!
//! A union candidate contributes *rows* instead of columns. Tables are
//! aligned by column name; columns missing on either side are padded with
//! nulls so the union is total (union search systems like [15] tolerate
//! partial schema overlap).

use crate::column::Column;
use crate::error::TableError;
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// Jaccard similarity of the two tables' column-name sets; the *unionability*
/// score used to rank union candidates.
pub fn schema_jaccard(a: &Table, b: &Table) -> f64 {
    let names_a: Vec<String> = (0..a.ncols()).map(|i| a.column_display_name(i)).collect();
    let names_b: Vec<String> = (0..b.ncols()).map(|i| b.column_display_name(i)).collect();
    if names_a.is_empty() && names_b.is_empty() {
        return 1.0;
    }
    let inter = names_a.iter().filter(|n| names_b.contains(n)).count();
    let union = names_a.len() + names_b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Union `top` and `bottom` by column name.
///
/// The output schema is `top`'s columns followed by `bottom`-only columns;
/// cells absent on one side become nulls. Errors if the tables share no
/// column names at all (nothing to align on).
pub fn union_tables(top: &Table, bottom: &Table) -> Result<Table> {
    if schema_jaccard(top, bottom) == 0.0 {
        return Err(TableError::UnionMismatch(format!(
            "tables {:?} and {:?} share no column names",
            top.name, bottom.name
        )));
    }
    let top_names: Vec<String> = (0..top.ncols())
        .map(|i| top.column_display_name(i))
        .collect();
    let bottom_names: Vec<String> = (0..bottom.ncols())
        .map(|i| bottom.column_display_name(i))
        .collect();

    let mut out_cols: Vec<Column> = Vec::new();
    // Columns led by `top`.
    for (i, name) in top_names.iter().enumerate() {
        let mut values: Vec<Value> = (0..top.nrows()).map(|r| top.columns()[i].get(r)).collect();
        match bottom_names.iter().position(|n| n == name) {
            Some(bi) => {
                values.extend((0..bottom.nrows()).map(|r| bottom.columns()[bi].get(r)));
            }
            None => values.extend(std::iter::repeat_n(Value::Null, bottom.nrows())),
        }
        out_cols.push(Column::from_values(Some(name.clone()), values));
    }
    // Bottom-only columns, padded with nulls on top.
    for (bi, name) in bottom_names.iter().enumerate() {
        if top_names.contains(name) {
            continue;
        }
        let mut values: Vec<Value> = std::iter::repeat_n(Value::Null, top.nrows()).collect();
        values.extend((0..bottom.nrows()).map(|r| bottom.columns()[bi].get(r)));
        out_cols.push(Column::from_values(Some(name.clone()), values));
    }
    let mut t = Table::from_columns(format!("{}+{}", top.name, bottom.name), out_cols)?;
    t.source = top.source.clone();
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str, cols: Vec<(&str, Vec<Option<f64>>)>) -> Table {
        Table::from_columns(
            name,
            cols.into_iter()
                .map(|(n, v)| Column::from_floats(Some(n.to_string()), v))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn union_appends_rows() {
        let a = t("a", vec![("x", vec![Some(1.0)]), ("y", vec![Some(2.0)])]);
        let b = t("b", vec![("x", vec![Some(3.0)]), ("y", vec![Some(4.0)])]);
        let u = union_tables(&a, &b).unwrap();
        assert_eq!(u.nrows(), 2);
        assert_eq!(u.ncols(), 2);
        assert_eq!(u.column_by_name("x").unwrap().get(1), Value::Float(3.0));
    }

    #[test]
    fn union_pads_missing_columns_with_nulls() {
        let a = t("a", vec![("x", vec![Some(1.0)])]);
        let b = t("b", vec![("x", vec![Some(2.0)]), ("z", vec![Some(9.0)])]);
        let u = union_tables(&a, &b).unwrap();
        assert_eq!(u.ncols(), 2);
        let z = u.column_by_name("z").unwrap();
        assert_eq!(z.get(0), Value::Null);
        assert_eq!(z.get(1), Value::Float(9.0));
    }

    #[test]
    fn disjoint_schemas_error() {
        let a = t("a", vec![("x", vec![Some(1.0)])]);
        let b = t("b", vec![("y", vec![Some(2.0)])]);
        assert!(union_tables(&a, &b).is_err());
    }

    #[test]
    fn jaccard_of_identical_schemas_is_one() {
        let a = t("a", vec![("x", vec![]), ("y", vec![])]);
        let b = t("b", vec![("y", vec![]), ("x", vec![])]);
        assert!((schema_jaccard(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_partial_overlap() {
        let a = t("a", vec![("x", vec![]), ("y", vec![])]);
        let b = t("b", vec![("y", vec![]), ("z", vec![])]);
        assert!((schema_jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }
}
