//! Minimal RFC-4180-ish CSV reader/writer.
//!
//! Quoted fields, embedded commas/newlines and doubled quotes are handled.
//! Types are inferred per column from the parsed cell values. Typing is
//! **quoting-aware**: a quoted cell is always a string value, verbatim —
//! `"NA"` stays the string `NA` instead of collapsing to null, `"123"`
//! stays a string instead of re-typing to a number. The writer quotes any
//! string that would otherwise read back as something else, so string
//! values and null patterns round-trip losslessly. (Numeric values keep
//! their value, but an all-integral float column re-reads as `Int` — text
//! carries no fraction to prove floatness; use [`crate::colbin`] when
//! exact dtypes must survive.)

use std::io::{BufRead, Write};

use crate::column::Column;
use crate::error::TableError;
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// One raw cell: its text plus whether any part of it was quoted (quoted
/// cells opt out of null-marker/number/bool typing).
struct RawField {
    text: String,
    quoted: bool,
}

/// Split raw CSV text into records of fields.
fn parse_records(text: &str) -> Result<Vec<Vec<RawField>>> {
    let mut records = Vec::new();
    let mut record: Vec<RawField> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;

    let push_field = |field: &mut String, quoted: &mut bool, record: &mut Vec<RawField>| {
        record.push(RawField {
            text: std::mem::take(field),
            quoted: std::mem::take(quoted),
        });
    };

    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                        quoted = true;
                    } else {
                        return Err(TableError::Csv("quote inside unquoted field".into()));
                    }
                }
                ',' => push_field(&mut field, &mut quoted, &mut record),
                '\r' => {
                    // swallow; \n terminates the record
                }
                '\n' => {
                    push_field(&mut field, &mut quoted, &mut record);
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(TableError::Csv("unterminated quoted field".into()));
    }
    if saw_any && (!field.is_empty() || quoted || !record.is_empty()) {
        push_field(&mut field, &mut quoted, &mut record);
        records.push(record);
    }
    Ok(records)
}

/// Read a table from CSV text. `has_header` controls whether the first
/// record provides column names; empty header cells yield anonymous columns.
pub fn read_csv_str(name: &str, text: &str, has_header: bool) -> Result<Table> {
    let mut records = parse_records(text)?;
    if records.is_empty() {
        return Table::from_columns(name, Vec::new());
    }
    let header: Option<Vec<RawField>> = if has_header {
        Some(records.remove(0))
    } else {
        None
    };
    let ncols = header
        .as_ref()
        .map(|h| h.len())
        .or_else(|| records.iter().map(|r| r.len()).max())
        .unwrap_or(0);

    let mut col_values: Vec<Vec<Value>> = vec![Vec::with_capacity(records.len()); ncols];
    for record in &records {
        #[allow(clippy::needless_range_loop)]
        for c in 0..ncols {
            // A quoted cell is a verbatim string; only unquoted text goes
            // through null-marker / number / bool inference.
            let value = match record.get(c) {
                Some(f) if f.quoted => Value::Str(f.text.clone()),
                Some(f) => Value::parse(&f.text),
                None => Value::Null,
            };
            col_values[c].push(value);
        }
    }
    let columns: Vec<Column> = col_values
        .into_iter()
        .enumerate()
        .map(|(i, values)| {
            let name = header.as_ref().and_then(|h| {
                h.get(i).and_then(|n| {
                    let t = n.text.trim();
                    if t.is_empty() {
                        None
                    } else {
                        Some(t.to_string())
                    }
                })
            });
            Column::from_values(name, values)
        })
        .collect();
    Table::from_columns(name, columns)
}

/// Read a table from any buffered reader.
pub fn read_csv<R: BufRead>(name: &str, mut reader: R, has_header: bool) -> Result<Table> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| TableError::Csv(e.to_string()))?;
    read_csv_str(name, &text, has_header)
}

fn needs_structural_quoting(field: &str) -> bool {
    // A bare \r must be quoted too: the reader swallows unquoted \r (CRLF
    // normalization), so leaving it bare would corrupt the value.
    field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r')
}

fn quote(field: &str) -> String {
    format!("\"{}\"", field.replace('"', "\"\""))
}

fn escape(field: &str) -> String {
    if needs_structural_quoting(field) {
        quote(field)
    } else {
        field.to_string()
    }
}

/// Render one cell value. Strings that would read back as anything other
/// than themselves — null markers (`NA`, `-`, …), numbers, booleans, the
/// empty string, padded whitespace — are quoted, which pins them as
/// verbatim strings on re-read.
fn escape_value(value: &Value) -> String {
    match value {
        Value::Str(s) => {
            if needs_structural_quoting(s) || Value::parse(s) != Value::Str(s.clone()) {
                quote(s)
            } else {
                s.clone()
            }
        }
        other => escape(&other.to_string()),
    }
}

/// Write a table as CSV (always with a header row).
pub fn write_csv<W: Write>(table: &Table, mut writer: W) -> Result<()> {
    let io_err = |e: std::io::Error| TableError::Csv(e.to_string());
    let header: Vec<String> = (0..table.ncols())
        .map(|i| escape(&table.column_display_name(i)))
        .collect();
    writeln!(writer, "{}", header.join(",")).map_err(io_err)?;
    for r in 0..table.nrows() {
        let row: Vec<String> = table.row(r).iter().map(escape_value).collect();
        writeln!(writer, "{}", row.join(",")).map_err(io_err)?;
    }
    Ok(())
}

/// Render a table to a CSV string.
pub fn to_csv_string(table: &Table) -> Result<String> {
    let mut buf = Vec::new();
    write_csv(table, &mut buf)?;
    String::from_utf8(buf).map_err(|e| TableError::Csv(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    #[test]
    fn roundtrip_simple() {
        let t = read_csv_str("t", "a,b\n1,x\n2,y\n", true).unwrap();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.column_by_name("a").unwrap().dtype(), DataType::Int);
        let csv = to_csv_string(&t).unwrap();
        let t2 = read_csv_str("t", &csv, true).unwrap();
        assert_eq!(t2.nrows(), 2);
        assert_eq!(
            t2.column_by_name("b").unwrap().get(1),
            Value::Str("y".into())
        );
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let t = read_csv_str("t", "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n", true).unwrap();
        assert_eq!(
            t.column_by_name("a").unwrap().get(0),
            Value::Str("hello, world".into())
        );
        assert_eq!(
            t.column_by_name("b").unwrap().get(0),
            Value::Str("say \"hi\"".into())
        );
    }

    #[test]
    fn missing_cells_become_nulls() {
        let t = read_csv_str("t", "a,b,c\n1,,3\n4,5\n", true).unwrap();
        assert_eq!(t.column_by_name("b").unwrap().get(0), Value::Null);
        assert_eq!(t.column_by_name("c").unwrap().get(1), Value::Null);
    }

    #[test]
    fn empty_header_cell_is_anonymous() {
        let t = read_csv_str("t", "a,,c\n1,2,3\n", true).unwrap();
        assert_eq!(t.columns()[1].name, None);
        assert_eq!(t.column_display_name(1), "_col1");
    }

    #[test]
    fn no_header_mode() {
        let t = read_csv_str("t", "1,2\n3,4\n", false).unwrap();
        assert_eq!(t.nrows(), 2);
        assert!(t.columns().iter().all(|c| c.name.is_none()));
    }

    #[test]
    fn crlf_line_endings() {
        let t = read_csv_str("t", "a,b\r\n1,2\r\n", true).unwrap();
        assert_eq!(t.nrows(), 1);
        assert_eq!(t.column_by_name("b").unwrap().get(0), Value::Int(2));
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(read_csv_str("t", "a\n\"oops\n", true).is_err());
    }

    #[test]
    fn embedded_newlines_in_quoted_fields() {
        let t = read_csv_str("t", "a,b\n\"line1\nline2\",x\n\"r\r\nn\",y\n", true).unwrap();
        assert_eq!(t.nrows(), 2);
        assert_eq!(
            t.column_by_name("a").unwrap().get(0),
            Value::Str("line1\nline2".into())
        );
        // \r survives inside quotes (only unquoted \r is swallowed).
        assert_eq!(
            t.column_by_name("a").unwrap().get(1),
            Value::Str("r\r\nn".into())
        );
        // And the whole thing round-trips.
        let csv = to_csv_string(&t).unwrap();
        let t2 = read_csv_str("t", &csv, true).unwrap();
        assert_eq!(
            t2.column_by_name("a").unwrap().get(0),
            Value::Str("line1\nline2".into())
        );
    }

    #[test]
    fn bare_carriage_return_survives_roundtrip() {
        let t = Table::from_columns(
            "t",
            vec![Column::from_strings(
                Some("x".into()),
                vec![Some("a\rb".into())],
            )],
        )
        .unwrap();
        let csv = to_csv_string(&t).unwrap();
        assert!(csv.contains("\"a\rb\""), "bare \\r forces quoting: {csv:?}");
        let t2 = read_csv_str("t", &csv, true).unwrap();
        assert_eq!(
            t2.column_by_name("x").unwrap().get(0),
            Value::Str("a\rb".into())
        );
    }

    #[test]
    fn empty_field_and_null_literals_both_parse_to_null() {
        let t = read_csv_str("t", "a,b,c,d\n,null,NA,n/a\n", true).unwrap();
        for name in ["a", "b", "c", "d"] {
            assert_eq!(
                t.column_by_name(name).unwrap().get(0),
                Value::Null,
                "column {name}"
            );
        }
    }

    #[test]
    fn all_null_column_roundtrips_as_all_null() {
        let t = read_csv_str("t", "a,b\n,1\n,2\n,3\n", true).unwrap();
        let a = t.column_by_name("a").unwrap();
        assert_eq!(a.null_count(), 3);
        let csv = to_csv_string(&t).unwrap();
        let t2 = read_csv_str("t", &csv, true).unwrap();
        assert_eq!(t2.column_by_name("a").unwrap().null_count(), 3);
        assert_eq!(t2.nrows(), 3);
    }

    #[test]
    fn nan_normalizes_to_null_on_roundtrip() {
        // A written NaN (never produced by Column, which normalizes NaN on
        // construction — but e.g. a foreign file may contain one) parses
        // back as null rather than resurrecting as a NaN float.
        let t = read_csv_str("t", "x\nNaN\n1.5\n", true).unwrap();
        let x = t.column_by_name("x").unwrap();
        assert_eq!(x.get(0), Value::Null);
        assert_eq!(x.get(1), Value::Float(1.5));
        assert_eq!(x.dtype(), DataType::Float);
        let csv = to_csv_string(&t).unwrap();
        let t2 = read_csv_str("t", &csv, true).unwrap();
        assert_eq!(t2.column_by_name("x").unwrap().null_count(), 1);
    }

    #[test]
    fn quoted_comma_fields_roundtrip() {
        let t = Table::from_columns(
            "t",
            vec![Column::from_strings(
                Some("addr".into()),
                vec![Some("12 Main St, Springfield".into()), Some("plain".into())],
            )],
        )
        .unwrap();
        let csv = to_csv_string(&t).unwrap();
        let t2 = read_csv_str("t", &csv, true).unwrap();
        assert_eq!(
            t2.column_by_name("addr").unwrap().get(0),
            Value::Str("12 Main St, Springfield".into())
        );
        assert_eq!(t2.nrows(), 2);
    }

    #[test]
    fn quoted_null_markers_stay_strings() {
        let t = read_csv_str("t", "a,b,c,d\n\"NA\",\"-\",\"\",\"n/a\"\n", true).unwrap();
        assert_eq!(
            t.column_by_name("a").unwrap().get(0),
            Value::Str("NA".into())
        );
        assert_eq!(
            t.column_by_name("b").unwrap().get(0),
            Value::Str("-".into())
        );
        assert_eq!(t.column_by_name("c").unwrap().get(0), Value::Str("".into()));
        assert_eq!(
            t.column_by_name("d").unwrap().get(0),
            Value::Str("n/a".into())
        );
        assert_eq!(t.column_by_name("a").unwrap().null_count(), 0);
    }

    #[test]
    fn quoted_numbers_and_bools_stay_strings() {
        let t = read_csv_str("t", "a,b,c\n\"123\",\"1.5\",\"true\"\n", true).unwrap();
        assert_eq!(
            t.column_by_name("a").unwrap().get(0),
            Value::Str("123".into())
        );
        assert_eq!(
            t.column_by_name("b").unwrap().get(0),
            Value::Str("1.5".into())
        );
        assert_eq!(
            t.column_by_name("c").unwrap().get(0),
            Value::Str("true".into())
        );
        assert_eq!(t.column_by_name("a").unwrap().dtype(), DataType::Str);
    }

    #[test]
    fn quoted_strings_keep_padding() {
        let t = read_csv_str("t", "a\n\" padded \"\n", true).unwrap();
        assert_eq!(
            t.column_by_name("a").unwrap().get(0),
            Value::Str(" padded ".into())
        );
    }

    #[test]
    fn marker_spelling_strings_roundtrip_losslessly() {
        // The writer must quote string cells that would otherwise read
        // back as nulls, numbers, bools, or trimmed text.
        let originals: Vec<Option<String>> = vec![
            Some("NA".into()),
            Some("-".into()),
            Some("null".into()),
            Some("42".into()),
            Some("3.5".into()),
            Some("true".into()),
            Some("".into()),
            Some(" padded ".into()),
            Some("plain".into()),
            None,
        ];
        let t = Table::from_columns(
            "t",
            vec![Column::from_strings(Some("s".into()), originals.clone())],
        )
        .unwrap();
        let csv = to_csv_string(&t).unwrap();
        let t2 = read_csv_str("t", &csv, true).unwrap();
        assert_eq!(t2.nrows(), t.nrows());
        let col = t2.column_by_name("s").unwrap();
        for (r, orig) in originals.iter().enumerate() {
            let expect = orig.clone().map_or(Value::Null, Value::Str);
            assert_eq!(col.get(r), expect, "row {r}");
        }
        // Unquoted spellings still collapse, proving quoting is what
        // carries the distinction.
        let t3 = read_csv_str("t", "s\nNA\n", true).unwrap();
        assert_eq!(t3.column_by_name("s").unwrap().get(0), Value::Null);
    }

    #[test]
    fn writer_escapes() {
        let t = Table::from_columns(
            "t",
            vec![Column::from_strings(
                Some("a,b".into()),
                vec![Some("x\"y".into())],
            )],
        )
        .unwrap();
        let s = to_csv_string(&t).unwrap();
        assert!(s.starts_with("\"a,b\""));
        assert!(s.contains("\"x\"\"y\""));
    }
}
