//! The `metam-table` binary columnar format (`.mtc`).
//!
//! A lossless on-disk serialization of a [`Table`]: typed column blocks
//! with **explicit null bitmaps**, so values never round-trip through CSV
//! text (where string cells spelling `"NA"` or `"123"` would re-type).
//! The lake layer caches profiled tables in this format so repeated
//! `discover` runs deserialize columns directly instead of re-parsing CSV.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "MTC1"
//! name: u32 len + utf8        source: u32 len + utf8
//! nrows: u64                  ncols: u32
//! per column:
//!   named: u8 (0|1)  [+ name: u32 len + utf8]
//!   dtype: u8 (0=int 1=float 2=str 3=bool)
//!   null bitmap: ceil(nrows/8) bytes, bit set = value present
//!   non-null values, in row order:
//!     int   → i64      float → f64 bits
//!     bool  → u8       str   → u32 len + utf8
//! fnv1a-64 checksum of everything above: u64
//! ```
//!
//! The trailing checksum makes truncation and corruption detectable:
//! [`read_table`] verifies it before parsing, so a damaged cache file
//! fails loudly (callers fall back to the CSV source and heal the cache).

use crate::column::{Column, ColumnData};
use crate::error::TableError;
use crate::table::Table;
use crate::Result;

/// First four bytes of every `.mtc` payload.
pub const MAGIC: &[u8; 4] = b"MTC1";

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bitmap<T>(out: &mut Vec<u8>, data: &[Option<T>]) {
    let mut bitmap = vec![0u8; data.len().div_ceil(8)];
    for (i, v) in data.iter().enumerate() {
        if v.is_some() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bitmap);
}

/// Serialize a table to `.mtc` bytes.
pub fn to_bytes(table: &Table) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_str(&mut out, &table.name);
    put_str(&mut out, &table.source);
    out.extend_from_slice(&(table.nrows() as u64).to_le_bytes());
    out.extend_from_slice(&(table.ncols() as u32).to_le_bytes());
    for column in table.columns() {
        match &column.name {
            Some(name) => {
                out.push(1);
                put_str(&mut out, name);
            }
            None => out.push(0),
        }
        match column.data() {
            ColumnData::Int(v) => {
                out.push(0);
                put_bitmap(&mut out, v);
                for x in v.iter().flatten() {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Float(v) => {
                out.push(1);
                put_bitmap(&mut out, v);
                for x in v.iter().flatten() {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Str(v) => {
                out.push(2);
                put_bitmap(&mut out, v);
                for s in v.iter().flatten() {
                    put_str(&mut out, s);
                }
            }
            ColumnData::Bool(v) => {
                out.push(3);
                put_bitmap(&mut out, v);
                for &b in v.iter().flatten() {
                    out.push(b as u8);
                }
            }
        }
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Serialize a table into a writer.
pub fn write_table<W: std::io::Write>(table: &Table, mut writer: W) -> Result<()> {
    writer
        .write_all(&to_bytes(table))
        .map_err(|e| TableError::ColBin(e.to_string()))
}

/// Bounds-checked reader over an `.mtc` byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| TableError::ColBin("truncated payload".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Fixed-width read; `take` bounds-checks, so the conversion can
    /// only fail on a truncated payload and degrades to a typed error.
    fn arr<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.take(N)?
            .try_into()
            .map_err(|_| TableError::ColBin("truncated payload".into()))
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.arr()?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.arr()?))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| TableError::ColBin(e.to_string()))
    }

    fn bitmap(&mut self, nrows: usize) -> Result<Vec<bool>> {
        let bytes = self.take(nrows.div_ceil(8))?;
        Ok((0..nrows)
            .map(|i| bytes[i / 8] & (1 << (i % 8)) != 0)
            .collect())
    }
}

/// Deserialize a table from `.mtc` bytes, verifying the checksum first.
pub fn read_table(bytes: &[u8]) -> Result<Table> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(TableError::ColBin("payload too short".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(
        tail.try_into()
            .map_err(|_| TableError::ColBin("truncated checksum".into()))?,
    );
    if fnv1a(body) != stored {
        return Err(TableError::ColBin("checksum mismatch".into()));
    }
    let mut cur = Cursor {
        bytes: body,
        pos: 0,
    };
    if cur.take(4)? != MAGIC {
        return Err(TableError::ColBin("bad magic".into()));
    }
    let name = cur.str()?;
    let source = cur.str()?;
    let nrows = cur.u64()? as usize;
    let ncols = cur.u32()? as usize;
    // Every column costs at least 2 bytes (name flag + dtype tag), so a
    // count exceeding the remaining payload is corrupt — reject it before
    // trusting it as an allocation size. (nrows needs no such guard: the
    // bitmap read bounds it against the payload before any row allocation.)
    if ncols > (body.len() - cur.pos) / 2 {
        return Err(TableError::ColBin(format!(
            "column count {ncols} exceeds payload"
        )));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let col_name = if cur.u8()? != 0 {
            Some(cur.str()?)
        } else {
            None
        };
        let dtype = cur.u8()?;
        let present = cur.bitmap(nrows)?;
        let column = match dtype {
            0 => {
                let mut data = Vec::with_capacity(nrows);
                for &p in &present {
                    data.push(if p {
                        Some(i64::from_le_bytes(cur.arr()?))
                    } else {
                        None
                    });
                }
                Column::from_ints(col_name, data)
            }
            1 => {
                let mut data = Vec::with_capacity(nrows);
                for &p in &present {
                    data.push(if p {
                        Some(f64::from_le_bytes(cur.arr()?))
                    } else {
                        None
                    });
                }
                // from_floats re-normalizes any NaN smuggled in by a
                // hand-edited payload back to null.
                Column::from_floats(col_name, data)
            }
            2 => {
                let mut data = Vec::with_capacity(nrows);
                for &p in &present {
                    data.push(if p { Some(cur.str()?) } else { None });
                }
                Column::from_strings(col_name, data)
            }
            3 => {
                let mut data = Vec::with_capacity(nrows);
                for &p in &present {
                    data.push(if p { Some(cur.u8()? != 0) } else { None });
                }
                Column::from_bools(col_name, data)
            }
            other => return Err(TableError::ColBin(format!("unknown dtype tag {other}"))),
        };
        columns.push(column);
    }
    if cur.pos != body.len() {
        return Err(TableError::ColBin(
            "trailing bytes after last column".into(),
        ));
    }
    let mut table = Table::from_columns(name, columns)?;
    table.source = source;
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample() -> Table {
        let mut t = Table::from_columns(
            "crime stats",
            vec![
                Column::from_ints(Some("id".into()), vec![Some(1), None, Some(-3)]),
                Column::from_floats(Some("rate".into()), vec![Some(0.5), Some(-2.25), None]),
                Column::from_strings(
                    Some("note".into()),
                    vec![Some("NA".into()), None, Some("a,b\n\"q\"".into())],
                ),
                Column::from_bools(None, vec![Some(true), Some(false), None]),
            ],
        )
        .unwrap();
        t.source = "portal".into();
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let back = read_table(&to_bytes(&t)).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.source, "portal");
        // The null-marker string survives as a string, not a null.
        assert_eq!(
            back.column_by_name("note").unwrap().get(0),
            Value::Str("NA".into())
        );
    }

    #[test]
    fn empty_table_roundtrips() {
        let t = Table::from_columns("empty", Vec::new()).unwrap();
        assert_eq!(read_table(&to_bytes(&t)).unwrap(), t);
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let bytes = to_bytes(&sample());
        for cut in [0, 4, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(read_table(&bytes[..cut]), Err(TableError::ColBin(_))),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupt_byte_is_rejected() {
        let mut bytes = to_bytes(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(read_table(&bytes), Err(TableError::ColBin(_))));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[0] = b'X';
        // Checksum catches it first; flipping magic only still fails.
        assert!(read_table(&bytes).is_err());
    }

    #[test]
    fn huge_column_count_is_rejected_without_allocating() {
        // A crafted payload with a valid checksum but an absurd ncols
        // must fail cleanly, not request a multi-GB allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b't'); // name "t"
        bytes.extend_from_slice(&0u32.to_le_bytes()); // source ""
        bytes.extend_from_slice(&0u64.to_le_bytes()); // nrows
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // ncols: absurd
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        assert!(matches!(read_table(&bytes), Err(TableError::ColBin(_))));
    }

    #[test]
    fn nan_in_payload_normalizes_to_null() {
        // Hand-build a payload containing a NaN float and re-checksum it.
        let t = Table::from_columns(
            "t",
            vec![Column::from_floats(Some("x".into()), vec![Some(1.5)])],
        )
        .unwrap();
        let mut bytes = to_bytes(&t);
        bytes.truncate(bytes.len() - 8);
        let float_at = bytes.len() - 8;
        bytes[float_at..].copy_from_slice(&f64::NAN.to_le_bytes());
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let back = read_table(&bytes).unwrap();
        assert_eq!(back.columns()[0].null_count(), 1);
    }
}
