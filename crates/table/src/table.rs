//! The [`Table`] type: a named list of equal-length columns.

use crate::column::Column;
use crate::error::TableError;
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;
use crate::Result;

/// A relation instance: a name, a source tag and equal-length columns.
///
/// The source tag models provenance (e.g. which open-data portal a table was
/// crawled from); the metadata profile uses it for syntactic similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Dataset name (e.g. file name in the repository).
    pub name: String,
    /// Provenance tag (e.g. portal / competition name).
    pub source: String,
    columns: Vec<Column>,
    nrows: usize,
}

impl Table {
    /// Empty table with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            source: String::new(),
            columns: Vec::new(),
            nrows: 0,
        }
    }

    /// Set the provenance tag, builder style.
    pub fn with_source(mut self, source: impl Into<String>) -> Self {
        self.source = source.into();
        self
    }

    /// Build from columns; all columns must have equal length.
    pub fn from_columns(name: impl Into<String>, columns: Vec<Column>) -> Result<Self> {
        let nrows = columns.first().map_or(0, Column::len);
        for c in &columns {
            if c.len() != nrows {
                return Err(TableError::LengthMismatch {
                    expected: nrows,
                    actual: c.len(),
                });
            }
        }
        Ok(Table {
            name: name.into(),
            source: String::new(),
            columns,
            nrows,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// Columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by index.
    pub fn column(&self, index: usize) -> Result<&Column> {
        self.columns
            .get(index)
            .ok_or(TableError::ColumnIndexOutOfBounds {
                index,
                len: self.columns.len(),
            })
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Index of the first column with the given name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name.as_deref() == Some(name))
            .ok_or_else(|| TableError::ColumnNotFound(name.to_string()))
    }

    /// Derived schema.
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Field {
                    name: c.name.clone(),
                    dtype: c.dtype(),
                })
                .collect(),
        )
    }

    /// Display name of column `i` (anonymous columns render as `_colN`).
    pub fn column_display_name(&self, i: usize) -> String {
        self.columns
            .get(i)
            .map(|c| c.name.clone().unwrap_or_else(|| format!("_col{i}")))
            .unwrap_or_else(|| format!("_col{i}"))
    }

    /// Append a column; must match the row count (any length is accepted
    /// when the table has no columns yet).
    pub fn add_column(&mut self, column: Column) -> Result<()> {
        if self.columns.is_empty() {
            self.nrows = column.len();
        } else if column.len() != self.nrows {
            return Err(TableError::LengthMismatch {
                expected: self.nrows,
                actual: column.len(),
            });
        }
        self.columns.push(column);
        Ok(())
    }

    /// New table with an extra column appended (original untouched).
    pub fn with_column(&self, column: Column) -> Result<Table> {
        let mut t = self.clone();
        t.add_column(column)?;
        Ok(t)
    }

    /// Projection onto the given column indices.
    pub fn select(&self, indices: &[usize]) -> Result<Table> {
        let mut cols = Vec::with_capacity(indices.len());
        for &i in indices {
            cols.push(self.column(i)?.clone());
        }
        let mut t = Table::from_columns(self.name.clone(), cols)?;
        t.source = self.source.clone();
        Ok(t)
    }

    /// Projection onto named columns.
    pub fn select_by_name(&self, names: &[&str]) -> Result<Table> {
        let indices: Result<Vec<usize>> = names.iter().map(|n| self.column_index(n)).collect();
        self.select(&indices?)
    }

    /// New table without the column at `index`.
    pub fn drop_column(&self, index: usize) -> Result<Table> {
        if index >= self.columns.len() {
            return Err(TableError::ColumnIndexOutOfBounds {
                index,
                len: self.columns.len(),
            });
        }
        let indices: Vec<usize> = (0..self.columns.len()).filter(|&i| i != index).collect();
        self.select(&indices)
    }

    /// Keep only the rows at `indices` (cloning values).
    pub fn take_rows(&self, indices: &[usize]) -> Table {
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        Table {
            name: self.name.clone(),
            source: self.source.clone(),
            columns,
            nrows: indices.len(),
        }
    }

    /// Row as dynamic values.
    pub fn row(&self, index: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(index)).collect()
    }

    /// Indices of columns whose type has a numeric view.
    pub fn numeric_column_indices(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.dtype().is_numeric())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of string columns (join-key candidates).
    pub fn string_column_indices(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.dtype() == DataType::Str)
            .map(|(i, _)| i)
            .collect()
    }

    /// Approximate in-memory size in bytes; only used for Table I-style
    /// repository statistics, not for allocation decisions.
    pub fn approx_bytes(&self) -> usize {
        let mut total = 0;
        for c in &self.columns {
            total += match c.data() {
                crate::column::ColumnData::Int(v) => v.len() * 16,
                crate::column::ColumnData::Float(v) => v.len() * 16,
                crate::column::ColumnData::Bool(v) => v.len() * 2,
                crate::column::ColumnData::Str(v) => v
                    .iter()
                    .map(|s| s.as_ref().map_or(8, |s| 24 + s.len()))
                    .sum(),
            };
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        Table::from_columns(
            "houses",
            vec![
                Column::from_strings(
                    Some("zip".into()),
                    vec![Some("60614".into()), Some("60615".into())],
                ),
                Column::from_floats(Some("price".into()), vec![Some(300.0), Some(420.0)]),
                Column::from_ints(Some("beds".into()), vec![Some(2), Some(3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_columns_rejects_ragged() {
        let err = Table::from_columns(
            "bad",
            vec![
                Column::from_ints(None, vec![Some(1)]),
                Column::from_ints(None, vec![Some(1), Some(2)]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, TableError::LengthMismatch { .. }));
    }

    #[test]
    fn lookup_by_name_and_index() {
        let t = sample_table();
        assert_eq!(t.column_index("price").unwrap(), 1);
        assert_eq!(t.column_by_name("beds").unwrap().get(1), Value::Int(3));
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn select_and_drop() {
        let t = sample_table();
        let p = t.select_by_name(&["price"]).unwrap();
        assert_eq!(p.ncols(), 1);
        assert_eq!(p.nrows(), 2);
        let d = t.drop_column(0).unwrap();
        assert_eq!(d.ncols(), 2);
        assert!(d.column_by_name("zip").is_err());
    }

    #[test]
    fn with_column_appends() {
        let t = sample_table();
        let t2 = t
            .with_column(Column::from_floats(
                Some("tax".into()),
                vec![Some(1.0), Some(2.0)],
            ))
            .unwrap();
        assert_eq!(t2.ncols(), 4);
        assert_eq!(t.ncols(), 3, "original untouched");
        assert!(t
            .with_column(Column::from_floats(None, vec![Some(1.0)]))
            .is_err());
    }

    #[test]
    fn take_rows_reorders() {
        let t = sample_table();
        let r = t.take_rows(&[1, 0, 1]);
        assert_eq!(r.nrows(), 3);
        assert_eq!(
            r.column_by_name("price").unwrap().get(0),
            Value::Float(420.0)
        );
    }

    #[test]
    fn schema_reflects_columns() {
        let t = sample_table();
        let s = t.schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.fields()[1].dtype, DataType::Float);
        assert_eq!(s.index_of("zip"), Some(0));
    }

    #[test]
    fn numeric_and_string_indices() {
        let t = sample_table();
        assert_eq!(t.numeric_column_indices(), vec![1, 2]);
        assert_eq!(t.string_column_indices(), vec![0]);
    }
}
