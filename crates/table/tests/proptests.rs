//! Property-based tests for the table substrate.

use metam_table::colbin;
use metam_table::csv::{read_csv_str, to_csv_string};
use metam_table::join::{left_join_column, match_ratio};
use metam_table::sample::sample_indices;
use metam_table::union::union_tables;
use metam_table::{Column, Table, Value};
use proptest::prelude::*;

fn float_opt() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![
        3 => (-1e6f64..1e6).prop_map(Some),
        1 => Just(None),
    ]
}

fn string_cell() -> impl Strategy<Value = Option<String>> {
    // Prefix with a letter that can never form a null marker ("na",
    // "none", "null", "nan", "-"): those strings legitimately round-trip
    // to nulls by the CSV convention.
    prop_oneof![
        4 => "w[a-z]{0,7}".prop_map(Some),
        1 => Just(None),
    ]
}

/// Adversarial string cells: null-marker spellings, numeric and boolean
/// spellings, padded whitespace, quotes/commas/newlines — everything the
/// quoting-aware CSV writer must pin down, plus ordinary text and nulls.
fn tricky_string_cell() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        2 => prop_oneof![
            Just("NA".to_string()),
            Just("-".to_string()),
            Just("null".to_string()),
            Just("n/a".to_string()),
            Just("NaN".to_string()),
            Just(String::new()),
        ].prop_map(Some),
        2 => prop_oneof![
            Just("42".to_string()),
            Just("-7.5".to_string()),
            Just("1e3".to_string()),
            Just("true".to_string()),
            Just(" padded ".to_string()),
        ].prop_map(Some),
        1 => "x[a-z]{0,5}".prop_map(|s| Some(format!(" {s},\"\n"))),
        3 => "w[a-z]{0,7}".prop_map(Some),
        1 => Just(None),
    ]
}

proptest! {
    #[test]
    fn csv_roundtrip_preserves_shape(rows in prop::collection::vec(
        (float_opt(), string_cell()), 0..40)) {
        let floats: Vec<Option<f64>> = rows.iter().map(|(f, _)| *f).collect();
        let strs: Vec<Option<String>> = rows.iter().map(|(_, s)| s.clone()).collect();
        let t = Table::from_columns(
            "t",
            vec![
                Column::from_floats(Some("num".into()), floats),
                Column::from_strings(Some("txt".into()), strs),
            ],
        ).unwrap();
        let csv = to_csv_string(&t).unwrap();
        let t2 = read_csv_str("t", &csv, true).unwrap();
        prop_assert_eq!(t2.nrows(), t.nrows());
        prop_assert_eq!(t2.ncols(), t.ncols());
        // Null pattern of the string column survives the roundtrip.
        for r in 0..t.nrows() {
            let orig = t.columns()[1].get(r).is_null();
            let back = t2.columns()[1].get(r).is_null();
            prop_assert_eq!(orig, back, "row {}", r);
        }
    }

    #[test]
    fn join_output_is_left_aligned(
        left_keys in prop::collection::vec("[a-c]", 1..30),
        right_keys in prop::collection::vec("[a-e]", 1..30),
    ) {
        let left = Table::from_columns(
            "l",
            vec![Column::from_strings(Some("k".into()), left_keys.iter().cloned().map(Some).collect())],
        ).unwrap();
        let right = Table::from_columns(
            "r",
            vec![
                Column::from_strings(Some("k".into()), right_keys.iter().cloned().map(Some).collect()),
                Column::from_ints(Some("v".into()), (0..right_keys.len() as i64).map(Some).collect()),
            ],
        ).unwrap();
        let joined = left_join_column(&left, 0, &right, 0, 1).unwrap();
        prop_assert_eq!(joined.len(), left.nrows());
        // Every non-null joined value is the *first* right occurrence of the key.
        #[allow(clippy::needless_range_loop)]
        for r in 0..left.nrows() {
            if let Value::Int(v) = joined.get(r) {
                let key = &left_keys[r];
                let first = right_keys.iter().position(|k| k == key).unwrap() as i64;
                prop_assert_eq!(v, first);
            } else {
                prop_assert!(!right_keys.contains(&left_keys[r]));
            }
        }
    }

    #[test]
    fn match_ratio_bounded(
        left_keys in prop::collection::vec("[a-d]", 1..40),
        right_keys in prop::collection::vec("[a-d]", 1..40),
    ) {
        let lk = Column::from_strings(None, left_keys.into_iter().map(Some).collect());
        let rk = Column::from_strings(None, right_keys.into_iter().map(Some).collect());
        let ratio = match_ratio(&lk, &rk);
        prop_assert!((0.0..=1.0).contains(&ratio));
    }

    #[test]
    fn sample_indices_distinct_and_bounded(n in 0usize..500, k in 0usize..600, seed: u64) {
        let s = sample_indices(n, k, seed);
        prop_assert_eq!(s.len(), k.min(n));
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), s.len());
        prop_assert!(s.iter().all(|&i| i < n.max(1)));
    }

    #[test]
    fn union_row_count_adds(
        a_rows in prop::collection::vec(float_opt(), 0..20),
        b_rows in prop::collection::vec(float_opt(), 0..20),
    ) {
        let a = Table::from_columns("a", vec![Column::from_floats(Some("x".into()), a_rows.clone())]).unwrap();
        let b = Table::from_columns("b", vec![Column::from_floats(Some("x".into()), b_rows.clone())]).unwrap();
        let u = union_tables(&a, &b).unwrap();
        prop_assert_eq!(u.nrows(), a_rows.len() + b_rows.len());
        prop_assert_eq!(u.ncols(), 1);
    }

    #[test]
    fn column_stats_within_range(vals in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let c = Column::from_floats(None, vals.iter().map(|&v| Some(v)).collect());
        let mn = c.min().unwrap();
        let mx = c.max().unwrap();
        let mean = c.mean().unwrap();
        prop_assert!(mn <= mean + 1e-9 && mean <= mx + 1e-9);
        prop_assert!(c.std().unwrap() >= 0.0);
    }

    #[test]
    fn csv_roundtrip_preserves_tricky_strings_exactly(
        cells in prop::collection::vec(tricky_string_cell(), 0..40),
    ) {
        // Strings that spell null markers, numbers or booleans must come
        // back verbatim — the writer quotes them, the reader keeps quoted
        // cells as strings.
        let t = Table::from_columns(
            "t",
            vec![Column::from_strings(Some("s".into()), cells.clone())],
        ).unwrap();
        let csv = to_csv_string(&t).unwrap();
        let t2 = read_csv_str("t", &csv, true).unwrap();
        prop_assert_eq!(t2.nrows(), t.nrows());
        let col = t2.columns()[0].clone();
        for (r, cell) in cells.iter().enumerate() {
            let expect = cell.clone().map_or(Value::Null, Value::Str);
            prop_assert_eq!(col.get(r), expect, "row {}", r);
        }
    }

    #[test]
    fn colbin_roundtrip_preserves_everything(
        floats in prop::collection::vec(float_opt(), 1..30),
        strings in prop::collection::vec(tricky_string_cell(), 1..30),
        ints in prop::collection::vec(prop_oneof![
            3 => (-1_000_000i64..1_000_000).prop_map(Some),
            1 => Just(None),
        ], 1..30),
    ) {
        // Equal-length columns (Table requires it).
        let n = floats.len().min(strings.len()).min(ints.len());
        let mut t = Table::from_columns(
            "prop",
            vec![
                Column::from_floats(Some("f".into()), floats[..n].to_vec()),
                Column::from_strings(None, strings[..n].to_vec()),
                Column::from_ints(Some("i".into()), ints[..n].to_vec()),
            ],
        ).unwrap();
        t.source = "proptest".into();
        let back = colbin::read_table(&colbin::to_bytes(&t)).unwrap();
        // Exact equality: values, nulls, dtypes, names, source.
        prop_assert_eq!(back, t);
    }

    #[test]
    fn colbin_roundtrip_normalizes_nan_to_null(
        x in -1e6f64..1e6,
        nan_first in prop_oneof![Just(true), Just(false)],
    ) {
        // NaN can't exist inside a Column (normalized at construction),
        // so the write side never emits it — this property pins the whole
        // chain: NaN in, null bitmap out, null back.
        let data = if nan_first {
            vec![Some(f64::NAN), Some(x)]
        } else {
            vec![Some(x), Some(f64::NAN)]
        };
        let t = Table::from_columns(
            "t",
            vec![Column::from_floats(Some("x".into()), data)],
        ).unwrap();
        let back = colbin::read_table(&colbin::to_bytes(&t)).unwrap();
        prop_assert_eq!(back.columns()[0].null_count(), 1);
        let kept = if nan_first { 1 } else { 0 };
        prop_assert_eq!(back.columns()[0].get(kept), Value::Float(x));
    }

    #[test]
    fn csv_then_colbin_chain_is_lossless(
        cells in prop::collection::vec(tricky_string_cell(), 1..25),
        nums in prop::collection::vec(float_opt(), 1..25),
    ) {
        // The full lake chain: Table → CSV → Table → .mtc → Table. The
        // CSV hop is the only lossy-prone link; after it, colbin must be
        // an exact fixpoint.
        let n = cells.len().min(nums.len());
        let t = Table::from_columns(
            "chain",
            vec![
                Column::from_strings(Some("s".into()), cells[..n].to_vec()),
                Column::from_floats(Some("v".into()), nums[..n].to_vec()),
            ],
        ).unwrap();
        let from_csv = read_csv_str("chain", &to_csv_string(&t).unwrap(), true).unwrap();
        // String values survive the CSV hop exactly (an *all-null* column
        // legitimately loses its dtype — no value carries type evidence —
        // so compare cell values, not column storage).
        for r in 0..n {
            prop_assert_eq!(
                from_csv.columns()[0].get(r),
                t.columns()[0].get(r),
                "row {}", r
            );
            // Null pattern of the numeric column survives.
            prop_assert_eq!(
                from_csv.columns()[1].get(r).is_null(),
                t.columns()[1].get(r).is_null(),
                "row {}", r
            );
        }
        let from_bin = colbin::read_table(&colbin::to_bytes(&from_csv)).unwrap();
        prop_assert_eq!(from_bin, from_csv);
    }

    #[test]
    fn value_parse_roundtrip_numbers(x in -1e9f64..1e9) {
        let shown = format!("{x}");
        let v = Value::parse(&shown);
        let back = v.as_f64().unwrap();
        prop_assert!((back - x).abs() <= 1e-9 * x.abs().max(1.0));
    }
}
